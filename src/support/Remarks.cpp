//===--- Remarks.cpp ------------------------------------------------------===//

#include "support/Remarks.h"
#include <sstream>

using namespace laminar;

const char *laminar::remarkKindName(RemarkKind K) {
  switch (K) {
  case RemarkKind::Passed:
    return "Passed";
  case RemarkKind::Missed:
    return "Missed";
  case RemarkKind::Analysis:
    return "Analysis";
  }
  return "Unknown";
}

void RemarkEmitter::remark(RemarkKind K, std::string Pass, std::string Name,
                           std::string Message, SourceRange Range) {
  if (!PassFilter.empty() && Pass.find(PassFilter) == std::string::npos)
    return;
  std::lock_guard<std::mutex> Lock(*Mu);
  Remarks.push_back(
      {K, std::move(Pass), std::move(Name), std::move(Message), Range});
}

std::string RemarkEmitter::str() const {
  std::ostringstream OS;
  for (const Remark &R : Remarks) {
    OS << "--- !" << remarkKindName(R.Kind) << "\n";
    OS << "Pass:     " << R.Pass << "\n";
    OS << "Name:     " << R.Name << "\n";
    if (R.Range.isValid()) {
      OS << "Loc:      " << R.Range.Begin.Line << ":" << R.Range.Begin.Col;
      if (R.Range.End.isValid() && R.Range.End != R.Range.Begin)
        OS << "-" << R.Range.End.Line << ":" << R.Range.End.Col;
      OS << "\n";
    }
    OS << "Message:  " << R.Message << "\n";
    OS << "...\n";
  }
  return OS.str();
}
