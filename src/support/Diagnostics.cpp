//===--- Diagnostics.cpp --------------------------------------------------===//

#include "support/Diagnostics.h"
#include <sstream>

using namespace laminar;

void DiagnosticEngine::error(SourceLoc Loc, std::string Message) {
  error(SourceRange(Loc), std::move(Message));
}

void DiagnosticEngine::error(SourceRange Range, std::string Message) {
  if (TooMany) {
    ++NumSuppressed;
    return;
  }
  Diags.push_back({DiagKind::Error, Range.Begin, std::move(Message), Range});
  ++NumErrors;
  if (ErrorLimit != 0 && NumErrors >= ErrorLimit) {
    TooMany = true;
    Diags.push_back({DiagKind::Note, Range.Begin,
                     "too many errors emitted, stopping now", SourceRange()});
  }
}

void DiagnosticEngine::warning(SourceLoc Loc, std::string Message) {
  if (TooMany) {
    ++NumSuppressed;
    return;
  }
  Diags.push_back({DiagKind::Warning, Loc, std::move(Message), SourceRange()});
}

void DiagnosticEngine::note(SourceLoc Loc, std::string Message) {
  if (TooMany) {
    ++NumSuppressed;
    return;
  }
  Diags.push_back({DiagKind::Note, Loc, std::move(Message), SourceRange()});
}

std::string DiagnosticEngine::str() const {
  std::ostringstream OS;
  for (const Diagnostic &D : Diags) {
    if (D.Loc.isValid()) {
      OS << D.Loc.Line << ":" << D.Loc.Col;
      if (D.Range.End.isValid() && D.Range.End != D.Range.Begin)
        OS << "-" << D.Range.End.Line << ":" << D.Range.End.Col;
      OS << ": ";
    }
    switch (D.Kind) {
    case DiagKind::Error:
      OS << "error: ";
      break;
    case DiagKind::Warning:
      OS << "warning: ";
      break;
    case DiagKind::Note:
      OS << "note: ";
      break;
    }
    OS << D.Message << "\n";
  }
  if (NumSuppressed > 0)
    OS << "(" << NumSuppressed << " further diagnostic(s) suppressed)\n";
  return OS.str();
}
