//===--- Remarks.h - Optimization remarks (why, not just what) -*- C++ -*-===//
//
// Modeled on LLVM's -Rpass remarks: every stage that makes an
// interesting decision records *why* it happened — which FIFO accesses
// the Laminar lowering resolved to scalars and which stayed as memory
// operations, why a program degraded to FIFO lowering, which channel
// dominates the steady-state schedule, which optimizer pass transformed
// which function. Remarks carry a SourceRange when the decision can be
// attributed to program text.
//
// A null RemarkEmitter pointer means "disabled"; call sites guard with
// `if (Remarks)` so the feature costs nothing when off.
//
//===----------------------------------------------------------------------===//

#ifndef LAMINAR_SUPPORT_REMARKS_H
#define LAMINAR_SUPPORT_REMARKS_H

#include "support/SourceLoc.h"
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace laminar {

/// Following LLVM's taxonomy: Passed = a transformation happened,
/// Missed = one was blocked or abandoned, Analysis = a neutral fact a
/// human tuning the program would want to know.
enum class RemarkKind { Passed, Missed, Analysis };

const char *remarkKindName(RemarkKind K);

struct Remark {
  RemarkKind Kind;
  /// Emitting stage or pass, e.g. "laminar-lowering", "sccp".
  std::string Pass;
  /// Stable CamelCase identifier of the decision, e.g. "DegradeToFifo".
  std::string Name;
  std::string Message;
  /// Program text the decision is attributed to; may be invalid.
  SourceRange Range;
};

/// Collects remarks for one compilation. With a pass filter set, only
/// remarks whose Pass contains the filter substring are recorded — the
/// rest are dropped at emission time, keeping filtered runs cheap.
///
/// remark() is safe to call from concurrent parallel-runtime workers
/// (emission takes a mutex). The mutex lives behind a unique_ptr so the
/// emitter stays movable — it is carried inside Compilation, which the
/// differ moves; moves and the read-side accessors are only legal when
/// no worker is emitting.
class RemarkEmitter {
public:
  RemarkEmitter() : Mu(std::make_unique<std::mutex>()) {}
  void setPassFilter(std::string Substring) {
    PassFilter = std::move(Substring);
  }

  void remark(RemarkKind K, std::string Pass, std::string Name,
              std::string Message, SourceRange Range = {});

  void passed(std::string Pass, std::string Name, std::string Message,
              SourceRange Range = {}) {
    remark(RemarkKind::Passed, std::move(Pass), std::move(Name),
           std::move(Message), Range);
  }
  void missed(std::string Pass, std::string Name, std::string Message,
              SourceRange Range = {}) {
    remark(RemarkKind::Missed, std::move(Pass), std::move(Name),
           std::move(Message), Range);
  }
  void analysis(std::string Pass, std::string Name, std::string Message,
                SourceRange Range = {}) {
    remark(RemarkKind::Analysis, std::move(Pass), std::move(Name),
           std::move(Message), Range);
  }

  const std::vector<Remark> &remarks() const { return Remarks; }

  /// YAML-ish rendering, one `--- !Kind` document per remark (the
  /// format LLVM's opt-viewer popularized):
  ///
  ///   --- !Passed
  ///   Pass:     laminar-lowering
  ///   Name:     DirectTokenAccess
  ///   Loc:      3:5-3:20
  ///   Message:  channel 'A' -> 'B': 16 accesses resolved to scalars
  ///   ...
  std::string str() const;

private:
  std::unique_ptr<std::mutex> Mu;
  std::string PassFilter;
  std::vector<Remark> Remarks;
};

} // namespace laminar

#endif // LAMINAR_SUPPORT_REMARKS_H
