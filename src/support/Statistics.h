//===--- Statistics.h - Named transformation counters ----------*- C++ -*-===//
//
// A per-compilation registry of named counters (no global state, so
// compilations are isolated). Every pipeline stage contributes: the
// graph builder, the scheduler, both lowerings, every optimizer pass
// and the interpreter. The T4 bench and the CI stats checker consume
// the registry through the API (get/sumPrefix/json) — never by parsing
// the rendered table.
//
// Naming convention (enforced by review, documented here): counters are
// named `phase.pass.counter`, all lower-case, dash-separated words:
//
//   phase    pipeline stage that owns the counter: `graph`, `schedule`,
//            `lower`, `opt`, `interp`, `driver`.
//   pass     the sub-component: an optimizer pass (`opt.sccp.*`), a
//            lowering strategy (`lower.laminar.*`, `lower.fifo.*`), or
//            a stage-internal grouping (`schedule.balance.*`).
//   counter  what is being counted (`constants`, `builder-folds`, ...).
//
// Keep names stable: bench tables, the golden stats-JSON schema test
// and external CI consumers key off them.
//
//===----------------------------------------------------------------------===//

#ifndef LAMINAR_SUPPORT_STATISTICS_H
#define LAMINAR_SUPPORT_STATISTICS_H

#include <cstdint>
#include <map>
#include <string>

namespace laminar {

/// Registry of named counters, keyed by "phase.pass.counter" strings.
/// Iteration order is deterministic (sorted by name).
class StatsRegistry {
public:
  /// Adds \p Delta to the counter named \p Name, creating it at zero.
  void add(const std::string &Name, uint64_t Delta = 1) {
    Counters[Name] += Delta;
  }

  /// Current value of \p Name, or 0 if it was never bumped.
  uint64_t get(const std::string &Name) const {
    auto It = Counters.find(Name);
    return It == Counters.end() ? 0 : It->second;
  }

  /// Sum of every counter whose name starts with \p Prefix. Use a
  /// trailing dot to sum a namespace ("opt." = all optimizer work).
  uint64_t sumPrefix(const std::string &Prefix) const;

  const std::map<std::string, uint64_t> &all() const { return Counters; }

  /// Adds every counter of \p Other into this registry. This is the
  /// concurrency story for parallel workers: each worker accumulates
  /// into a private registry (or plain counters) and the owner merges
  /// at join — the registry itself stays lock-free and movable (it is
  /// carried inside Compilation, which is moved around by the differ).
  void merge(const StatsRegistry &Other) {
    for (const auto &KV : Other.Counters)
      Counters[KV.first] += KV.second;
  }

  void clear() { Counters.clear(); }

  /// Renders "value  name" lines sorted by counter name, with the value
  /// column right-aligned to the widest value in the registry.
  std::string str() const;

  /// One machine-readable JSON document:
  ///
  ///   { "version": 1, "counters": { "opt.sccp.constants": 3, ... } }
  ///
  /// Keys are sorted; `version` is bumped on incompatible shape changes
  /// (tracked by the golden schema test). This is what
  /// `laminarc --stats-json=<file>` writes and what bench/CI consume.
  std::string json() const;

private:
  std::map<std::string, uint64_t> Counters;
};

/// A registry view that prefixes every counter with a namespace, so a
/// stage can write `S.add("steady-firings")` instead of repeating its
/// phase name. Null registry = disabled (all adds are dropped).
class StatsScope {
public:
  StatsScope(StatsRegistry *R, std::string Prefix)
      : R(R), Prefix(std::move(Prefix)) {}

  void add(const std::string &Name, uint64_t Delta = 1) {
    if (R)
      R->add(Prefix + "." + Name, Delta);
  }

  bool enabled() const { return R != nullptr; }

private:
  StatsRegistry *R;
  std::string Prefix;
};

} // namespace laminar

#endif // LAMINAR_SUPPORT_STATISTICS_H
