//===--- Statistics.h - Named transformation counters ----------*- C++ -*-===//
//
// A per-compilation registry of named counters (no global state, so
// compilations are isolated). The optimizer bumps counters such as
// "sccp.constants-folded"; the T4 bench prints them to show the enabling
// effect of LaminarIR on standard optimizations.
//
//===----------------------------------------------------------------------===//

#ifndef LAMINAR_SUPPORT_STATISTICS_H
#define LAMINAR_SUPPORT_STATISTICS_H

#include <cstdint>
#include <map>
#include <string>

namespace laminar {

/// Registry of named counters, keyed by "pass.counter" strings. Iteration
/// order is deterministic (sorted by name).
class StatsRegistry {
public:
  /// Adds \p Delta to the counter named \p Name, creating it at zero.
  void add(const std::string &Name, uint64_t Delta = 1) {
    Counters[Name] += Delta;
  }

  /// Current value of \p Name, or 0 if it was never bumped.
  uint64_t get(const std::string &Name) const {
    auto It = Counters.find(Name);
    return It == Counters.end() ? 0 : It->second;
  }

  const std::map<std::string, uint64_t> &all() const { return Counters; }

  void clear() { Counters.clear(); }

  /// Renders "value  name" lines, sorted by counter name.
  std::string str() const;

private:
  std::map<std::string, uint64_t> Counters;
};

} // namespace laminar

#endif // LAMINAR_SUPPORT_STATISTICS_H
