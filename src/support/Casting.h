//===--- Casting.h - LLVM-style isa/cast/dyn_cast helpers ------*- C++ -*-===//
//
// Part of the LaminarIR reproduction. Tag-based RTTI replacement: a class
// hierarchy opts in by providing `static bool classof(const Base *)`.
//
//===----------------------------------------------------------------------===//

#ifndef LAMINAR_SUPPORT_CASTING_H
#define LAMINAR_SUPPORT_CASTING_H

#include <cassert>

namespace laminar {

/// Returns true if \p Val is an instance of \p To (or a subclass).
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Checked downcast; asserts that the dynamic type matches.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

/// Checked downcast (const variant).
template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Checking downcast; returns null when the dynamic type does not match.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

/// Checking downcast (const variant).
template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// Like dyn_cast, but tolerates a null argument (propagates it).
template <typename To, typename From> To *dyn_cast_or_null(From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

} // namespace laminar

#endif // LAMINAR_SUPPORT_CASTING_H
