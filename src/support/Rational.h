//===--- Rational.h - Exact rational arithmetic ----------------*- C++ -*-===//
//
// Used by the balance-equation solver: repetition ratios between stream
// actors are rationals until the final scaling to the minimal integral
// repetition vector.
//
//===----------------------------------------------------------------------===//

#ifndef LAMINAR_SUPPORT_RATIONAL_H
#define LAMINAR_SUPPORT_RATIONAL_H

#include <cstdint>
#include <string>

namespace laminar {

/// Greatest common divisor of two non-negative integers.
int64_t gcd64(int64_t A, int64_t B);

/// Least common multiple; asserts on overflow-free small inputs.
int64_t lcm64(int64_t A, int64_t B);

/// An exact rational number with a canonical representation: the
/// denominator is always positive and gcd(|num|, den) == 1.
class Rational {
public:
  Rational() = default;
  Rational(int64_t Num) : Num(Num), Den(1) {}
  Rational(int64_t Num, int64_t Den);

  int64_t num() const { return Num; }
  int64_t den() const { return Den; }

  bool isZero() const { return Num == 0; }
  bool isIntegral() const { return Den == 1; }

  Rational operator+(const Rational &RHS) const;
  Rational operator-(const Rational &RHS) const;
  Rational operator*(const Rational &RHS) const;
  Rational operator/(const Rational &RHS) const;

  bool operator==(const Rational &RHS) const {
    return Num == RHS.Num && Den == RHS.Den;
  }
  bool operator!=(const Rational &RHS) const { return !(*this == RHS); }
  bool operator<(const Rational &RHS) const;

  std::string str() const;

private:
  int64_t Num = 0;
  int64_t Den = 1;
};

} // namespace laminar

#endif // LAMINAR_SUPPORT_RATIONAL_H
