//===--- Rational.h - Exact rational arithmetic ----------------*- C++ -*-===//
//
// Used by the balance-equation solver: repetition ratios between stream
// actors are rationals until the final scaling to the minimal integral
// repetition vector.
//
//===----------------------------------------------------------------------===//

#ifndef LAMINAR_SUPPORT_RATIONAL_H
#define LAMINAR_SUPPORT_RATIONAL_H

#include <cstdint>
#include <optional>
#include <string>

namespace laminar {

/// Greatest common divisor of two non-negative integers.
int64_t gcd64(int64_t A, int64_t B);

/// Least common multiple of two positive integers; asserts that the
/// result is representable. Input-derived values must go through
/// checkedLcm (support/Limits.h) instead.
int64_t lcm64(int64_t A, int64_t B);

/// An exact rational number with a canonical representation: the
/// denominator is always positive and gcd(|num|, den) == 1.
///
/// The plain constructor and operators assert representability and are
/// for compiler-internal values with known small magnitudes. Anything
/// derived from user input (stream rates, repetition ratios) must use
/// the checked factory/operations, which return nullopt instead of
/// overflowing: the balance-equation solver turns that nullopt into a
/// diagnostic.
class Rational {
public:
  Rational() = default;
  Rational(int64_t Num) : Num(Num), Den(1) {}
  Rational(int64_t Num, int64_t Den);

  /// Canonicalizing factory that rejects unrepresentable values (for
  /// example 1/INT64_MIN, whose canonical denominator does not fit).
  static std::optional<Rational> makeChecked(int64_t Num, int64_t Den);

  /// Overflow-checked product and sum.
  std::optional<Rational> mulChecked(const Rational &RHS) const;
  std::optional<Rational> addChecked(const Rational &RHS) const;

  int64_t num() const { return Num; }
  int64_t den() const { return Den; }

  bool isZero() const { return Num == 0; }
  bool isIntegral() const { return Den == 1; }

  Rational operator+(const Rational &RHS) const;
  Rational operator-(const Rational &RHS) const;
  Rational operator*(const Rational &RHS) const;
  Rational operator/(const Rational &RHS) const;

  bool operator==(const Rational &RHS) const {
    return Num == RHS.Num && Den == RHS.Den;
  }
  bool operator!=(const Rational &RHS) const { return !(*this == RHS); }
  bool operator<(const Rational &RHS) const;

  std::string str() const;

private:
  int64_t Num = 0;
  int64_t Den = 1;
};

} // namespace laminar

#endif // LAMINAR_SUPPORT_RATIONAL_H
