//===--- Limits.cpp -------------------------------------------------------===//

#include "support/Limits.h"
#include "support/Rational.h"

using namespace laminar;

std::optional<int64_t> laminar::checkedAdd(int64_t A, int64_t B) {
  int64_t R;
  if (__builtin_add_overflow(A, B, &R))
    return std::nullopt;
  return R;
}

std::optional<int64_t> laminar::checkedMul(int64_t A, int64_t B) {
  int64_t R;
  if (__builtin_mul_overflow(A, B, &R))
    return std::nullopt;
  return R;
}

std::optional<int64_t> laminar::checkedLcm(int64_t A, int64_t B) {
  if (A <= 0 || B <= 0)
    return std::nullopt;
  return checkedMul(A / gcd64(A, B), B);
}
