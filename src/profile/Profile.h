//===--- Profile.h - Runtime telemetry for the execution engines -*- C++ -*-===//
//
// Low-overhead run-time profiling for both execution engines (the
// threaded interpreter and, schema-compatibly, the threaded-C backend):
//
//  * Profiler — per-worker counter slots and event rings, handed to
//    ParallelRunner through RunOptions::Profiler. A null profiler costs
//    one pointer test per hook (the PR 3 trace-cost contract); an
//    enabled one costs a counter increment per slab, never per token.
//  * RunProfile — the post-run summary: per-worker firings/slabs/
//    iterations and spin-wait tallies, per-cut-edge backpressure stalls
//    and occupancy high-water marks, steady-phase wall time. Exported
//    as the stable `laminar-runtime-stats-v1` JSON (--profile-json),
//    folded into the StatsRegistry (parallel.runtime.* deterministic,
//    parallel.timing.* timing-dependent), and replayed into the Chrome
//    trace as per-worker timelines (--profile-trace).
//
// Determinism contract (mirrors the fault report's split): firings,
// slabs, iterations and the static edge/worker shape are deterministic
// across reruns of the same compilation; spin-wait counts, stalls,
// occupancy marks and all wall-clock fields are not and are masked in
// golden tests.
//
//===----------------------------------------------------------------------===//

#ifndef LAMINAR_PROFILE_PROFILE_H
#define LAMINAR_PROFILE_PROFILE_H

#include "profile/EventRing.h"
#include "support/Statistics.h"
#include "support/Trace.h"
#include <string>
#include <vector>

namespace laminar {
namespace profile {

/// Per-worker tallies. Firings/Slabs/Iterations are deterministic;
/// the spin-wait fields count actual contention events (a *wait* is
/// one blocked episode, a *cycle* is one spin-loop turn inside it).
struct WorkerCounters {
  uint64_t Firings = 0;
  uint64_t Slabs = 0;
  uint64_t Iterations = 0;
  uint64_t SpinPopWaits = 0;
  uint64_t SpinPopCycles = 0;
  uint64_t SpinPushWaits = 0;
  uint64_t SpinPushCycles = 0;
  uint64_t RingDropped = 0;
};

/// Per-cut-edge tallies plus the static shape (src/dst partition,
/// capacity) so the JSON is self-describing.
struct EdgeCounters {
  std::string Edge;
  unsigned Src = 0;
  unsigned Dst = 0;
  int64_t Capacity = 0;
  uint64_t PushStalls = 0;
  uint64_t PopStalls = 0;
  uint64_t OccupancyHighWater = 0;
};

/// One run's telemetry summary, engine-agnostic: the threaded-C
/// backend's compiled-in instrumentation emits the same JSON shape
/// with engine "threaded-c".
struct RunProfile {
  std::string Engine = "threaded-interp";
  unsigned Workers = 1;
  int64_t Iterations = 0;
  uint64_t WallNs = 0;
  std::vector<WorkerCounters> PerWorker;
  std::vector<EdgeCounters> Edges;

  uint64_t totalFirings() const;
  uint64_t totalSlabs() const;
  uint64_t totalIterations() const;

  /// The stable `laminar-runtime-stats-v1` document (schema described
  /// in docs/OBSERVABILITY.md). Always a valid JSON object.
  std::string json() const;

  /// Folds the summary into the registry: `parallel.runtime.*` for the
  /// deterministic counters, `parallel.timing.*` for the rest.
  void recordStats(StatsRegistry &Stats) const;
};

/// Recording state for one parallel run. Slots are index-owned: worker
/// W writes only worker(W) and the producer/consumer halves of its
/// edges' slots, so recording needs no atomics; the thread join
/// publishes everything before finish() reads it.
class Profiler {
public:
  /// \p RingCapacity caps the per-worker event ring (0 disables rings:
  /// counters only, nothing for the trace replay).
  explicit Profiler(unsigned Workers, size_t RingCapacity = 4096);

  /// Absolute steady_clock ns — the same clock TraceContext stamps
  /// with, so replayed spans line up with the compiler spans.
  static uint64_t nowNs();

  struct alignas(64) WorkerSlot {
    WorkerCounters C;
    EventRing Ring;
    explicit WorkerSlot(size_t RingCap) : Ring(RingCap) {}
  };

  /// Producer-written and consumer-written fields live on separate
  /// cache lines: the two endpoint workers tally concurrently.
  struct EdgeSlot {
    alignas(64) uint64_t PushStalls = 0;
    uint64_t OccupancyHighWater = 0;
    alignas(64) uint64_t PopStalls = 0;
  };

  unsigned workers() const { return static_cast<unsigned>(Slots.size()); }
  WorkerSlot &worker(unsigned W) { return Slots[W]; }
  const WorkerSlot &worker(unsigned W) const { return Slots[W]; }
  bool ringsEnabled() const { return RingCap > 0; }

  /// Sizes the edge-slot table; call before spawning workers.
  void initEdges(size_t NumEdges) { EdgeSlots.resize(NumEdges); }
  EdgeSlot &edge(size_t E) { return EdgeSlots[E]; }
  const EdgeSlot &edge(size_t E) const { return EdgeSlots[E]; }
  size_t numEdges() const { return EdgeSlots.size(); }

  /// Replays every worker's event ring into \p T as completed spans on
  /// per-worker Chrome-trace lanes (tid = worker + 1): "slab <n>" for
  /// slab bodies, "wait.pop <edge>" / "wait.push <edge>" for real spin
  /// waits. \p EdgeNames indexes the cut edges in plan order. Call
  /// after the workers joined.
  void mergeIntoTrace(TraceContext &T,
                      const std::vector<std::string> &EdgeNames) const;

private:
  size_t RingCap;
  std::vector<WorkerSlot> Slots;
  std::vector<EdgeSlot> EdgeSlots;
};

} // namespace profile
} // namespace laminar

#endif // LAMINAR_PROFILE_PROFILE_H
