//===--- Profile.cpp - Runtime telemetry for the execution engines --------===//

#include "profile/Profile.h"
#include <chrono>
#include <cstdio>
#include <sstream>

using namespace laminar;
using namespace laminar::profile;

uint64_t RunProfile::totalFirings() const {
  uint64_t N = 0;
  for (const WorkerCounters &W : PerWorker)
    N += W.Firings;
  return N;
}

uint64_t RunProfile::totalSlabs() const {
  uint64_t N = 0;
  for (const WorkerCounters &W : PerWorker)
    N += W.Slabs;
  return N;
}

uint64_t RunProfile::totalIterations() const {
  uint64_t N = 0;
  for (const WorkerCounters &W : PerWorker)
    N += W.Iterations;
  return N;
}

/// Escapes a string for embedding in a JSON literal. Edge names are
/// compiler-chosen channel identifiers, but escape defensively.
static std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char Ch : S) {
    switch (Ch) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(Ch) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", Ch);
        Out += Buf;
      } else {
        Out += Ch;
      }
    }
  }
  return Out;
}

std::string RunProfile::json() const {
  std::ostringstream OS;
  OS << "{\n";
  OS << "  \"schema\": \"laminar-runtime-stats-v1\",\n";
  OS << "  \"engine\": \"" << jsonEscape(Engine) << "\",\n";
  OS << "  \"workers\": " << Workers << ",\n";
  OS << "  \"iterations\": " << Iterations << ",\n";
  OS << "  \"wall-ns\": " << WallNs << ",\n";
  // Steady-state throughput; 0 when the wall clock read as 0 (e.g. a
  // degenerate or faulted run), so the field is always present.
  const double ItersPerSec =
      WallNs > 0 ? static_cast<double>(Iterations) * 1e9 /
                       static_cast<double>(WallNs)
                 : 0.0;
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.1f", ItersPerSec);
  OS << "  \"iters-per-sec\": " << Buf << ",\n";

  uint64_t SPopW = 0, SPopC = 0, SPushW = 0, SPushC = 0, Drop = 0;
  for (const WorkerCounters &W : PerWorker) {
    SPopW += W.SpinPopWaits;
    SPopC += W.SpinPopCycles;
    SPushW += W.SpinPushWaits;
    SPushC += W.SpinPushCycles;
    Drop += W.RingDropped;
  }
  OS << "  \"totals\": {\n";
  OS << "    \"firings\": " << totalFirings() << ",\n";
  OS << "    \"slabs\": " << totalSlabs() << ",\n";
  OS << "    \"iterations\": " << totalIterations() << ",\n";
  OS << "    \"spin-pop-waits\": " << SPopW << ",\n";
  OS << "    \"spin-pop-cycles\": " << SPopC << ",\n";
  OS << "    \"spin-push-waits\": " << SPushW << ",\n";
  OS << "    \"spin-push-cycles\": " << SPushC << ",\n";
  OS << "    \"ring-dropped\": " << Drop << "\n";
  OS << "  },\n";

  OS << "  \"per-worker\": [";
  for (size_t W = 0; W < PerWorker.size(); ++W) {
    const WorkerCounters &C = PerWorker[W];
    OS << (W ? ",\n    {" : "\n    {");
    OS << "\"worker\": " << W << ", \"firings\": " << C.Firings
       << ", \"slabs\": " << C.Slabs << ", \"iterations\": " << C.Iterations
       << ", \"spin-pop-waits\": " << C.SpinPopWaits
       << ", \"spin-pop-cycles\": " << C.SpinPopCycles
       << ", \"spin-push-waits\": " << C.SpinPushWaits
       << ", \"spin-push-cycles\": " << C.SpinPushCycles
       << ", \"ring-dropped\": " << C.RingDropped << "}";
  }
  OS << "\n  ],\n";

  OS << "  \"edges\": [";
  for (size_t E = 0; E < Edges.size(); ++E) {
    const EdgeCounters &C = Edges[E];
    OS << (E ? ",\n    {" : "\n    {");
    OS << "\"edge\": \"" << jsonEscape(C.Edge) << "\", \"src\": " << C.Src
       << ", \"dst\": " << C.Dst << ", \"capacity\": " << C.Capacity
       << ", \"push-stalls\": " << C.PushStalls
       << ", \"pop-stalls\": " << C.PopStalls
       << ", \"occupancy-hwm\": " << C.OccupancyHighWater << "}";
  }
  OS << (Edges.empty() ? "]\n" : "\n  ]\n");
  OS << "}\n";
  return OS.str();
}

void RunProfile::recordStats(StatsRegistry &Stats) const {
  // Deterministic across reruns of the same compilation.
  Stats.add("parallel.runtime.workers", Workers);
  Stats.add("parallel.runtime.iterations",
            static_cast<uint64_t>(Iterations));
  Stats.add("parallel.runtime.firings", totalFirings());
  Stats.add("parallel.runtime.slabs", totalSlabs());
  Stats.add("parallel.runtime.worker-iterations", totalIterations());
  // Timing-dependent: excluded from determinism contracts and golden
  // comparisons (same split as the fault report's worker snapshot).
  uint64_t SPopW = 0, SPushW = 0, Stalls = 0;
  for (const WorkerCounters &W : PerWorker) {
    SPopW += W.SpinPopWaits;
    SPushW += W.SpinPushWaits;
  }
  for (const EdgeCounters &E : Edges)
    Stalls += E.PushStalls + E.PopStalls;
  Stats.add("parallel.timing.wall-ns", WallNs);
  Stats.add("parallel.timing.spin-pop-waits", SPopW);
  Stats.add("parallel.timing.spin-push-waits", SPushW);
  Stats.add("parallel.timing.edge-stalls", Stalls);
}

Profiler::Profiler(unsigned Workers, size_t RingCapacity)
    : RingCap(RingCapacity) {
  Slots.reserve(Workers);
  for (unsigned W = 0; W < Workers; ++W)
    Slots.emplace_back(RingCap);
}

uint64_t Profiler::nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void Profiler::mergeIntoTrace(TraceContext &T,
                              const std::vector<std::string> &EdgeNames)
    const {
  if (!T.enabled())
    return;
  char Name[64];
  for (unsigned W = 0; W < workers(); ++W) {
    const uint32_t Tid = W + 1;
    // Begin/End pairs never nest within a worker (waits sit strictly
    // between slab bodies), so one pending slot per kind suffices.
    uint64_t SlabStart = 0, PopStart = 0, PushStart = 0;
    for (const RingEvent &Ev : Slots[W].Ring.events()) {
      switch (Ev.Kind) {
      case EventKind::SlabBegin:
        SlabStart = Ev.TimeNs;
        break;
      case EventKind::SlabEnd:
        std::snprintf(Name, sizeof(Name), "slab %u", Ev.Arg);
        T.addCompletedSpan(Name, SlabStart, Ev.TimeNs - SlabStart, 0, Tid);
        break;
      case EventKind::WaitPopBegin:
        PopStart = Ev.TimeNs;
        break;
      case EventKind::WaitPopEnd:
        std::snprintf(Name, sizeof(Name), "wait.pop %s",
                      Ev.Arg < EdgeNames.size()
                          ? EdgeNames[Ev.Arg].c_str()
                          : "?");
        T.addCompletedSpan(Name, PopStart, Ev.TimeNs - PopStart, 0, Tid);
        break;
      case EventKind::WaitPushBegin:
        PushStart = Ev.TimeNs;
        break;
      case EventKind::WaitPushEnd:
        std::snprintf(Name, sizeof(Name), "wait.push %s",
                      Ev.Arg < EdgeNames.size()
                          ? EdgeNames[Ev.Arg].c_str()
                          : "?");
        T.addCompletedSpan(Name, PushStart, Ev.TimeNs - PushStart, 0, Tid);
        break;
      }
    }
  }
}
