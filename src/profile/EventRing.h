//===--- EventRing.h - Fixed-capacity per-worker event buffer --*- C++ -*-===//
//
// The raw recording half of the runtime profiler: each worker thread
// owns one EventRing and appends timestamped records (slab start/end,
// spin-wait begin/end) with no synchronization — the ring is merged
// into the trace only after the worker has been joined.
//
// Capacity is fixed at construction so recording never allocates on
// the hot path. When the ring fills, *new* events are dropped (not old
// ones): the run's opening timeline is usually what a human wants to
// see, and drop-newest keeps every kept Begin/End pair intact. The
// drop count is reported so truncation is never silent.
//
//===----------------------------------------------------------------------===//

#ifndef LAMINAR_PROFILE_EVENTRING_H
#define LAMINAR_PROFILE_EVENTRING_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace laminar {
namespace profile {

/// What happened. Begin/End pairs never nest within one worker (waits
/// happen strictly between slab bodies), so replay pairs each End with
/// the most recent Begin of the matching kind.
enum class EventKind : uint8_t {
  SlabBegin,     ///< Arg = slab index.
  SlabEnd,       ///< Arg = slab index.
  WaitPopBegin,  ///< Arg = cut-edge index. Recorded only on real waits.
  WaitPopEnd,    ///< Arg = cut-edge index.
  WaitPushBegin, ///< Arg = cut-edge index.
  WaitPushEnd,   ///< Arg = cut-edge index.
};

/// One timestamped record. TimeNs is an absolute steady_clock reading;
/// the replay rebases it against the trace context's epoch.
struct RingEvent {
  EventKind Kind;
  uint32_t Arg;
  uint64_t TimeNs;
};

/// Single-writer append-only buffer with a hard capacity.
class EventRing {
public:
  explicit EventRing(size_t Capacity) : Cap(Capacity) {
    Events.reserve(Capacity);
  }

  void record(EventKind K, uint32_t Arg, uint64_t TimeNs) {
    if (Events.size() >= Cap) {
      ++Dropped;
      return;
    }
    Events.push_back(RingEvent{K, Arg, TimeNs});
  }

  const std::vector<RingEvent> &events() const { return Events; }
  uint64_t dropped() const { return Dropped; }
  size_t capacity() const { return Cap; }

private:
  size_t Cap;
  uint64_t Dropped = 0;
  std::vector<RingEvent> Events;
};

} // namespace profile
} // namespace laminar

#endif // LAMINAR_PROFILE_EVENTRING_H
