//===--- Module.h - LaminarIR modules and globals --------------*- C++ -*-===//

#ifndef LAMINAR_LIR_MODULE_H
#define LAMINAR_LIR_MODULE_H

#include "lir/Function.h"
#include "lir/Value.h"
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace laminar {
namespace lir {

/// Classifies global storage so that the interpreter can attribute memory
/// traffic. Everything except State is *data communication* in the
/// paper's sense: FIFO buffers, their head/tail counters, and the live
/// tokens LaminarIR carries across steady-state iterations.
enum class MemClass { State, ChannelBuf, ChannelHead, ChannelTail, LiveToken };

const char *memClassName(MemClass MC);

inline bool isCommunication(MemClass MC) { return MC != MemClass::State; }

/// A module-level array (size 1 for scalars) of Int or Float elements,
/// optionally with constant initial contents.
class GlobalVar {
public:
  GlobalVar(std::string Name, TypeKind Elem, int64_t Size, MemClass MC)
      : Name(std::move(Name)), Elem(Elem), Size(Size), MC(MC) {}

  const std::string &getName() const { return Name; }
  TypeKind getElemType() const { return Elem; }
  int64_t getSize() const { return Size; }
  MemClass getMemClass() const { return MC; }

  bool hasInit() const { return !IntInit.empty() || !FloatInit.empty(); }
  const std::vector<int64_t> &intInit() const { return IntInit; }
  const std::vector<double> &floatInit() const { return FloatInit; }
  void setIntInit(std::vector<int64_t> V) { IntInit = std::move(V); }
  void setFloatInit(std::vector<double> V) { FloatInit = std::move(V); }

  /// Dense id assigned by Module::numberGlobals for interpreter storage.
  uint32_t getSlot() const { return Slot; }
  void setSlot(uint32_t S) { Slot = S; }

private:
  std::string Name;
  TypeKind Elem;
  int64_t Size;
  MemClass MC;
  std::vector<int64_t> IntInit;
  std::vector<double> FloatInit;
  uint32_t Slot = 0;
};

/// Top-level container: globals, functions and uniqued constants. A
/// compiled stream program is a module with two functions, @init (run
/// once) and @steady (run per steady-state iteration).
class Module {
public:
  explicit Module(std::string Name) : Name(std::move(Name)) {}

  const std::string &getName() const { return Name; }

  /// Token type read from the external input stream.
  TypeKind getInputType() const { return InputTy; }
  void setInputType(TypeKind Ty) { InputTy = Ty; }
  /// Token type written to the external output stream.
  TypeKind getOutputType() const { return OutputTy; }
  void setOutputType(TypeKind Ty) { OutputTy = Ty; }

  Function *createFunction(const std::string &FnName);
  Function *getFunction(const std::string &FnName) const;
  const std::vector<std::unique_ptr<Function>> &functions() const {
    return Funcs;
  }

  GlobalVar *createGlobal(const std::string &GName, TypeKind Elem,
                          int64_t Size, MemClass MC);
  const std::vector<std::unique_ptr<GlobalVar>> &globals() const {
    return Globals;
  }

  /// Assigns dense slots to globals; returns the count.
  uint32_t numberGlobals();

  // Uniqued constants.
  ConstInt *getConstInt(int64_t V);
  ConstFloat *getConstFloat(double V);
  ConstBool *getConstBool(bool V);

  /// Total instruction count over all functions (code-size metric).
  size_t instructionCount() const;

private:
  std::string Name;
  TypeKind InputTy = TypeKind::Float;
  TypeKind OutputTy = TypeKind::Float;
  // Constants and globals are declared before the functions so that the
  // functions (whose instructions reference them) are destroyed first.
  std::map<int64_t, std::unique_ptr<ConstInt>> IntConsts;
  std::map<uint64_t, std::unique_ptr<ConstFloat>> FloatConsts;
  std::unique_ptr<ConstBool> TrueConst;
  std::unique_ptr<ConstBool> FalseConst;
  std::vector<std::unique_ptr<GlobalVar>> Globals;
  std::vector<std::unique_ptr<Function>> Funcs;
};

} // namespace lir
} // namespace laminar

#endif // LAMINAR_LIR_MODULE_H
