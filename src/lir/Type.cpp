//===--- Type.cpp ---------------------------------------------------------===//

#include "lir/Type.h"

using namespace laminar;
using namespace laminar::lir;

const char *lir::typeName(TypeKind Ty) {
  switch (Ty) {
  case TypeKind::Void:
    return "void";
  case TypeKind::Bool:
    return "bool";
  case TypeKind::Int:
    return "int";
  case TypeKind::Float:
    return "float";
  }
  return "?";
}
