//===--- SSABuilder.cpp ---------------------------------------------------===//

#include "lir/SSABuilder.h"
#include <cassert>

using namespace laminar;
using namespace laminar::lir;

Value *SSABuilder::resolve(Value *V) const {
  auto It = Forwarded.find(V);
  while (It != Forwarded.end()) {
    V = It->second;
    It = Forwarded.find(V);
  }
  return V;
}

void SSABuilder::writeVariable(VarKey Var, BasicBlock *BB, Value *V) {
  CurrentDef[Var][BB] = V;
}

Value *SSABuilder::readVariable(VarKey Var, BasicBlock *BB, TypeKind Ty) {
  auto VarIt = CurrentDef.find(Var);
  if (VarIt != CurrentDef.end()) {
    auto It = VarIt->second.find(BB);
    if (It != VarIt->second.end())
      return resolve(It->second);
  }
  return readVariableRecursive(Var, BB, Ty);
}

Value *SSABuilder::readVariableRecursive(VarKey Var, BasicBlock *BB,
                                         TypeKind Ty) {
  Value *Result;
  if (!isSealed(BB)) {
    // The block may gain predecessors later (loop header under
    // construction): create an operand-less phi and complete it on seal.
    PhiInst *Phi = Builder.createPhi(Ty, BB);
    IncompletePhis[BB].push_back({Var, Phi});
    Result = Phi;
  } else if (BB->predecessors().size() == 1) {
    Result = readVariable(Var, BB->predecessors().front(), Ty);
  } else {
    assert(!BB->predecessors().empty() &&
           "reading a variable in an unreachable block");
    // Break potential cycles with an empty phi before recursing.
    PhiInst *Phi = Builder.createPhi(Ty, BB);
    writeVariable(Var, BB, Phi);
    Result = addPhiOperands(Var, Phi, Ty);
  }
  writeVariable(Var, BB, Result);
  return Result;
}

Value *SSABuilder::addPhiOperands(VarKey Var, PhiInst *Phi, TypeKind Ty) {
  BasicBlock *BB = Phi->getParent();
  for (BasicBlock *Pred : BB->predecessors())
    Phi->addIncoming(readVariable(Var, Pred, Ty), Pred);
  return tryRemoveTrivialPhi(Phi);
}

Value *SSABuilder::tryRemoveTrivialPhi(PhiInst *Phi) {
  Value *Same = nullptr;
  for (unsigned I = 0, E = Phi->getNumIncoming(); I != E; ++I) {
    Value *Op = resolve(Phi->getIncomingValue(I));
    if (Op == Same || Op == Phi)
      continue;
    if (Same)
      return Phi; // Merges at least two distinct values: not trivial.
    Same = Op;
  }
  assert(Same && "phi with no incoming values other than itself");

  // Collect phi users before rewriting; they may become trivial in turn.
  std::vector<PhiInst *> PhiUsers;
  for (Instruction *User : Phi->users())
    if (User != Phi)
      if (auto *P = dyn_cast<PhiInst>(User))
        PhiUsers.push_back(P);

  Phi->replaceAllUsesWith(Same);
  Forwarded[Phi] = Same;

  for (PhiInst *P : PhiUsers)
    if (!Forwarded.count(P))
      tryRemoveTrivialPhi(P);
  return resolve(Same);
}

void SSABuilder::sealBlock(BasicBlock *BB) {
  assert(!isSealed(BB) && "sealing a block twice");
  auto It = IncompletePhis.find(BB);
  if (It != IncompletePhis.end()) {
    for (auto &[Var, Phi] : It->second)
      addPhiOperands(Var, Phi, Phi->getType());
    IncompletePhis.erase(It);
  }
  Sealed.insert(BB);
}
