//===--- IRParser.cpp - Parse the printer's textual format -----------------===//

#include "lir/IRParser.h"
#include "lir/Instruction.h"
#include <cctype>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <unordered_map>

using namespace laminar;
using namespace laminar::lir;

namespace {

class IRParser {
public:
  IRParser(const std::string &Text, DiagnosticEngine &Diags)
      : Diags(Diags) {
    std::istringstream SS(Text);
    std::string Line;
    while (std::getline(SS, Line))
      Lines.push_back(Line);
  }

  std::unique_ptr<Module> run();

private:
  // --- Line helpers -----------------------------------------------------
  bool atEnd() const { return Pos >= Lines.size(); }
  std::string peekLine() const {
    return atEnd() ? std::string() : trim(Lines[Pos]);
  }
  std::string takeLine() { return trim(Lines[Pos++]); }
  SourceLoc here() const {
    return SourceLoc(static_cast<uint32_t>(Pos + 1), 1);
  }

  static std::string trim(const std::string &S) {
    size_t B = S.find_first_not_of(" \t\r");
    if (B == std::string::npos)
      return std::string();
    size_t E = S.find_last_not_of(" \t\r");
    return S.substr(B, E - B + 1);
  }

  bool error(const std::string &Msg) {
    Diags.error(here(), Msg);
    return false;
  }

  // --- Token scanning within one line ------------------------------------
  struct Cursor {
    std::string Line;
    size_t At = 0;

    void skipSpace() {
      while (At < Line.size() && (Line[At] == ' ' || Line[At] == '\t'))
        ++At;
    }
    bool eat(const std::string &Lit) {
      skipSpace();
      if (Line.compare(At, Lit.size(), Lit) != 0)
        return false;
      At += Lit.size();
      return true;
    }
    bool done() {
      skipSpace();
      return At >= Line.size();
    }
    /// Next identifier-like token ([A-Za-z0-9_.]+).
    std::string word() {
      skipSpace();
      size_t B = At;
      while (At < Line.size() &&
             (std::isalnum(static_cast<unsigned char>(Line[At])) ||
              Line[At] == '_' || Line[At] == '.'))
        ++At;
      return Line.substr(B, At - B);
    }
    /// A number token (may include sign, '.', exponent).
    std::string number() {
      skipSpace();
      size_t B = At;
      if (At < Line.size() && (Line[At] == '-' || Line[At] == '+'))
        ++At;
      while (At < Line.size() &&
             (std::isdigit(static_cast<unsigned char>(Line[At])) ||
              Line[At] == '.' || Line[At] == 'e' || Line[At] == 'E' ||
              ((Line[At] == '-' || Line[At] == '+') &&
               (Line[At - 1] == 'e' || Line[At - 1] == 'E'))))
        ++At;
      return Line.substr(B, At - B);
    }
  };

  // --- Sections -----------------------------------------------------------
  bool parseHeader();
  bool parseGlobal(const std::string &Line);
  bool parseFunction(const std::string &Header);
  bool parseInstruction(Cursor &C, BasicBlock *BB, bool HasResult,
                        unsigned ResultId);

  /// Parses one operand reference; null on failure. Forward references
  /// (only legal in phis) are returned as null with \p Forward set.
  Value *parseOperand(Cursor &C, TypeKind Hint, unsigned *Forward);

  std::optional<TypeKind> parseType(const std::string &W) {
    if (W == "int")
      return TypeKind::Int;
    if (W == "float")
      return TypeKind::Float;
    if (W == "bool")
      return TypeKind::Bool;
    if (W == "void")
      return TypeKind::Void;
    return std::nullopt;
  }

  DiagnosticEngine &Diags;
  std::vector<std::string> Lines;
  size_t Pos = 0;
  std::unique_ptr<Module> M;

  // Per-function state.
  std::unordered_map<std::string, BasicBlock *> Blocks;
  std::unordered_map<unsigned, Value *> Values;
  struct PhiPatch {
    PhiInst *Phi;
    unsigned OperandIndex;
    unsigned ValueId;
  };
  std::vector<PhiPatch> Patches;
};

} // namespace

bool IRParser::parseHeader() {
  std::string Line = takeLine();
  Cursor C{Line};
  if (!C.eat("module"))
    return error("expected 'module <name>'");
  C.skipSpace();
  M = std::make_unique<Module>(C.Line.substr(C.At));

  for (const char *What : {"input", "output"}) {
    Cursor C2{takeLine()};
    if (!C2.eat(What))
      return error(std::string("expected '") + What + " <type>'");
    auto Ty = parseType(C2.word());
    if (!Ty)
      return error("bad type");
    if (What[0] == 'i')
      M->setInputType(*Ty);
    else
      M->setOutputType(*Ty);
  }
  return true;
}

bool IRParser::parseGlobal(const std::string &Line) {
  // global @name : float[16] buf
  Cursor C{Line};
  C.eat("global");
  if (!C.eat("@"))
    return error("expected '@name' in global");
  std::string Name = C.word();
  if (!C.eat(":"))
    return error("expected ':' in global");
  auto Ty = parseType(C.word());
  if (!Ty || !isTokenType(*Ty))
    return error("bad global element type");
  int64_t Size = 1;
  if (C.eat("[")) {
    Size = std::strtoll(C.number().c_str(), nullptr, 10);
    if (!C.eat("]"))
      return error("expected ']'");
  }
  std::string MCName = C.word();
  MemClass MC = MemClass::State;
  if (MCName == "state")
    MC = MemClass::State;
  else if (MCName == "buf")
    MC = MemClass::ChannelBuf;
  else if (MCName == "head")
    MC = MemClass::ChannelHead;
  else if (MCName == "tail")
    MC = MemClass::ChannelTail;
  else if (MCName == "live")
    MC = MemClass::LiveToken;
  else
    return error("unknown memory class '" + MCName + "'");
  GlobalVar *G = M->createGlobal(Name, *Ty, Size, MC);
  if (C.eat("=")) {
    if (!C.eat("{"))
      return error("expected '{' in global initializer");
    std::vector<int64_t> IntVals;
    std::vector<double> FloatVals;
    bool First = true;
    while (!C.eat("}")) {
      if (!First && !C.eat(","))
        return error("expected ',' in global initializer");
      First = false;
      std::string Num = C.number();
      if (Num.empty())
        return error("expected a number in global initializer");
      if (*Ty == TypeKind::Float)
        FloatVals.push_back(std::strtod(Num.c_str(), nullptr));
      else
        IntVals.push_back(std::strtoll(Num.c_str(), nullptr, 10));
    }
    if (*Ty == TypeKind::Float)
      G->setFloatInit(std::move(FloatVals));
    else
      G->setIntInit(std::move(IntVals));
  }
  return true;
}

Value *IRParser::parseOperand(Cursor &C, TypeKind Hint, unsigned *Forward) {
  if (Forward)
    *Forward = ~0u;
  C.skipSpace();
  if (C.eat("%")) {
    unsigned Id =
        static_cast<unsigned>(std::strtoul(C.number().c_str(), nullptr, 10));
    auto It = Values.find(Id);
    if (It != Values.end())
      return It->second;
    if (Forward) {
      *Forward = Id;
      return nullptr;
    }
    error("use of undefined value %" + std::to_string(Id));
    return nullptr;
  }
  if (C.eat("true"))
    return M->getConstBool(true);
  if (C.eat("false"))
    return M->getConstBool(false);
  std::string Num = C.number();
  if (Num.empty()) {
    error("expected an operand");
    return nullptr;
  }
  bool IsFloat = Num.find_first_of(".eE") != std::string::npos ||
                 Hint == TypeKind::Float;
  if (IsFloat)
    return M->getConstFloat(std::strtod(Num.c_str(), nullptr));
  return M->getConstInt(std::strtoll(Num.c_str(), nullptr, 10));
}

bool IRParser::parseFunction(const std::string &Header) {
  // func @name {
  Cursor H{Header};
  H.eat("func");
  if (!H.eat("@"))
    return error("expected '@name' in func");
  Function *F = M->createFunction(H.word());

  Blocks.clear();
  Values.clear();
  Patches.clear();

  // First pass: find block labels up to the closing brace.
  size_t Start = Pos;
  std::vector<std::string> LabelOrder;
  while (!atEnd()) {
    std::string Line = peekLine();
    if (Line == "}")
      break;
    if (!Line.empty() && Line.back() == ':')
      LabelOrder.push_back(Line.substr(0, Line.size() - 1));
    ++Pos;
  }
  if (atEnd())
    return error("missing '}' at end of function");
  Pos = Start;
  if (LabelOrder.empty())
    return error("function has no blocks");

  // Pre-create blocks so terminators can reference them, preserving
  // the printed labels verbatim so a re-print reproduces the input
  // text (the round-trip tests and the fuzzer's oracle rely on it).
  for (const std::string &Label : LabelOrder) {
    if (Blocks.count(Label))
      return error("duplicate block label '" + Label + "'");
    Blocks[Label] = F->createBlockWithLabel(Label);
  }

  BasicBlock *Cur = nullptr;
  while (true) {
    std::string Line = takeLine();
    if (Line == "}")
      break;
    if (Line.empty())
      continue;
    if (Line.back() == ':') {
      Cur = Blocks.at(Line.substr(0, Line.size() - 1));
      continue;
    }
    if (!Cur)
      return error("instruction before first block label");
    Cursor C{Line};
    bool HasResult = false;
    unsigned ResultId = 0;
    if (C.eat("%")) {
      ResultId = static_cast<unsigned>(
          std::strtoul(C.number().c_str(), nullptr, 10));
      if (!C.eat("="))
        return error("expected '=' after result");
      HasResult = true;
    }
    if (!parseInstruction(C, Cur, HasResult, ResultId))
      return false;
  }

  // Patch forward phi references.
  for (const PhiPatch &P : Patches) {
    auto It = Values.find(P.ValueId);
    if (It == Values.end())
      return error("phi references undefined value %" +
                   std::to_string(P.ValueId));
    P.Phi->setOperand(P.OperandIndex, It->second);
  }
  // Phi types: take the type of the first incoming value (iterate to a
  // fixpoint for phi-of-phi chains).
  for (int Round = 0; Round < 4; ++Round)
    for (const auto &BB : F->blocks())
      for (const auto &I : BB->instructions())
        if (auto *Phi = dyn_cast<PhiInst>(I.get()))
          if (Phi->getNumIncoming() > 0)
            Phi->refineType(Phi->getIncomingValue(0)->getType());

  // Rebuild predecessor lists from the terminators.
  for (const auto &BB : F->blocks())
    BB->clearPredecessors();
  for (const auto &BB : F->blocks())
    for (BasicBlock *Succ : BB->successors())
      Succ->addPredecessor(BB.get());
  return true;
}

bool IRParser::parseInstruction(Cursor &C, BasicBlock *BB, bool HasResult,
                                unsigned ResultId) {
  std::string Op = C.word();
  auto Finish = [&](std::unique_ptr<Instruction> I) {
    Instruction *Raw = BB->append(std::move(I));
    if (HasResult)
      Values[ResultId] = Raw;
    return true;
  };
  auto Operand = [&](TypeKind Hint = TypeKind::Int) {
    return parseOperand(C, Hint, nullptr);
  };

  // Binary opcodes.
  static const std::unordered_map<std::string, BinOp> BinOps = {
      {"add", BinOp::Add},   {"sub", BinOp::Sub},   {"mul", BinOp::Mul},
      {"div", BinOp::Div},   {"rem", BinOp::Rem},   {"and", BinOp::And},
      {"or", BinOp::Or},     {"xor", BinOp::Xor},   {"shl", BinOp::Shl},
      {"shr", BinOp::Shr},   {"fadd", BinOp::FAdd}, {"fsub", BinOp::FSub},
      {"fmul", BinOp::FMul}, {"fdiv", BinOp::FDiv},
  };
  if (auto It = BinOps.find(Op); It != BinOps.end()) {
    TypeKind Hint =
        isFloatBinOp(It->second) ? TypeKind::Float : TypeKind::Int;
    Value *L = Operand(Hint);
    if (!L || !C.eat(","))
      return error("bad binary operands");
    Value *R = Operand(Hint);
    if (!R)
      return false;
    return Finish(std::make_unique<BinaryInst>(It->second, L, R));
  }

  static const std::unordered_map<std::string, UnOp> UnOps = {
      {"neg", UnOp::Neg},
      {"fneg", UnOp::FNeg},
      {"not", UnOp::Not},
      {"bitnot", UnOp::BitNot},
  };
  if (auto It = UnOps.find(Op); It != UnOps.end()) {
    Value *V = Operand(It->second == UnOp::FNeg ? TypeKind::Float
                                                : TypeKind::Int);
    if (!V)
      return false;
    return Finish(std::make_unique<UnaryInst>(It->second, V));
  }

  if (Op == "icmp" || Op == "fcmp") {
    std::string PredName = C.word();
    CmpPred Pred;
    if (PredName == "eq")
      Pred = CmpPred::EQ;
    else if (PredName == "ne")
      Pred = CmpPred::NE;
    else if (PredName == "lt")
      Pred = CmpPred::LT;
    else if (PredName == "le")
      Pred = CmpPred::LE;
    else if (PredName == "gt")
      Pred = CmpPred::GT;
    else if (PredName == "ge")
      Pred = CmpPred::GE;
    else
      return error("unknown comparison predicate '" + PredName + "'");
    TypeKind Hint = Op == "fcmp" ? TypeKind::Float : TypeKind::Int;
    Value *L = Operand(Hint);
    if (!L || !C.eat(","))
      return error("bad cmp operands");
    Value *R = Operand(Hint);
    if (!R)
      return false;
    return Finish(std::make_unique<CmpInst>(Pred, L, R));
  }

  static const std::unordered_map<std::string, CastOp> CastOps = {
      {"itof", CastOp::IntToFloat},
      {"ftoi", CastOp::FloatToInt},
      {"btoi", CastOp::BoolToInt},
  };
  if (auto It = CastOps.find(Op); It != CastOps.end()) {
    Value *V = Operand(It->second == CastOp::FloatToInt ? TypeKind::Float
                                                        : TypeKind::Int);
    if (!V)
      return false;
    return Finish(std::make_unique<CastInst>(It->second, V));
  }

  if (Op == "select") {
    Value *Cond = Operand(TypeKind::Bool);
    if (!Cond || !C.eat(","))
      return error("bad select");
    Value *T = Operand();
    if (!T || !C.eat(","))
      return error("bad select");
    Value *F = Operand(T->getType());
    if (!F)
      return false;
    return Finish(std::make_unique<SelectInst>(Cond, T, F));
  }

  if (Op == "call") {
    std::string Name = C.word();
    Builtin B = Builtin::Sin;
    bool Found = false;
    for (int K = 0; K <= static_cast<int>(Builtin::MaxF); ++K) {
      if (builtinName(static_cast<Builtin>(K)) == Name) {
        B = static_cast<Builtin>(K);
        Found = true;
        break;
      }
    }
    if (!Found)
      return error("unknown builtin '" + Name + "'");
    if (!C.eat("("))
      return error("expected '('");
    std::vector<Value *> Args;
    for (unsigned K = 0; K < builtinArity(B); ++K) {
      if (K && !C.eat(","))
        return error("expected ','");
      Value *A = Operand(builtinArgType(B));
      if (!A)
        return false;
      Args.push_back(A);
    }
    if (!C.eat(")"))
      return error("expected ')'");
    return Finish(std::make_unique<CallInst>(B, Args));
  }

  if (Op == "input")
    return Finish(std::make_unique<InputInst>(M->getInputType()));

  if (Op == "output") {
    Value *V = Operand(M->getOutputType());
    if (!V)
      return false;
    return Finish(std::make_unique<OutputInst>(V));
  }

  if (Op == "load" || Op == "store") {
    if (!C.eat("@"))
      return error("expected '@global'");
    std::string Name = C.word();
    GlobalVar *G = nullptr;
    for (const auto &Candidate : M->globals())
      if (Candidate->getName() == Name)
        G = Candidate.get();
    if (!G)
      return error("unknown global '@" + Name + "'");
    if (!C.eat("["))
      return error("expected '['");
    Value *Index = Operand(TypeKind::Int);
    if (!Index || !C.eat("]"))
      return error("bad index");
    if (Op == "load")
      return Finish(std::make_unique<LoadInst>(G, Index));
    if (!C.eat(","))
      return error("expected ',' in store");
    Value *V = Operand(G->getElemType());
    if (!V)
      return false;
    return Finish(std::make_unique<StoreInst>(G, Index, V));
  }

  if (Op == "phi") {
    auto Phi = std::make_unique<PhiInst>(TypeKind::Int);
    PhiInst *Raw = Phi.get();
    bool First = true;
    while (true) {
      if (!First && !C.eat(","))
        break;
      if (!C.eat("[")) {
        if (First)
          break;
        return error("expected '[' in phi incoming");
      }
      First = false;
      unsigned Forward = ~0u;
      Value *V = parseOperand(C, TypeKind::Int, &Forward);
      if (!V && Forward == ~0u)
        return false;
      if (!C.eat(","))
        return error("expected ',' in phi incoming");
      std::string Label = C.word();
      auto BlockIt = Blocks.find(Label);
      if (BlockIt == Blocks.end())
        return error("unknown block '" + Label + "'");
      if (!C.eat("]"))
        return error("expected ']'");
      if (V) {
        Raw->addIncoming(V, BlockIt->second);
      } else {
        // Placeholder until the forward value is defined.
        Raw->addIncoming(M->getConstInt(0), BlockIt->second);
        Patches.push_back({Raw, Raw->getNumIncoming() - 1, Forward});
      }
    }
    if (Raw->getNumIncoming() > 0)
      Raw->refineType(Raw->getIncomingValue(0)->getType());
    return Finish(std::move(Phi));
  }

  if (Op == "br") {
    std::string Label = C.word();
    auto It = Blocks.find(Label);
    if (It == Blocks.end())
      return error("unknown block '" + Label + "'");
    return Finish(std::make_unique<BrInst>(It->second));
  }

  if (Op == "condbr") {
    Value *Cond = Operand(TypeKind::Bool);
    if (!Cond || !C.eat(","))
      return error("bad condbr");
    std::string T = C.word();
    if (!C.eat(","))
      return error("bad condbr");
    std::string E = C.word();
    auto TI = Blocks.find(T);
    auto EI = Blocks.find(E);
    if (TI == Blocks.end() || EI == Blocks.end())
      return error("unknown branch target");
    return Finish(
        std::make_unique<CondBrInst>(Cond, TI->second, EI->second));
  }

  if (Op == "ret")
    return Finish(std::make_unique<RetInst>());

  return error("unknown instruction '" + Op + "'");
}

std::unique_ptr<Module> IRParser::run() {
  if (!parseHeader())
    return nullptr;
  while (!atEnd()) {
    std::string Line = peekLine();
    if (Line.empty()) {
      ++Pos;
      continue;
    }
    if (Line.rfind("global", 0) == 0) {
      takeLine();
      if (!parseGlobal(Line))
        return nullptr;
      continue;
    }
    if (Line.rfind("func", 0) == 0) {
      takeLine();
      if (!parseFunction(Line))
        return nullptr;
      continue;
    }
    error("unexpected line: " + Line);
    return nullptr;
  }
  M->numberGlobals();
  for (const auto &F : M->functions())
    F->numberValues();
  return std::move(M);
}

std::unique_ptr<Module> lir::parseIR(const std::string &Text,
                                     DiagnosticEngine &Diags) {
  IRParser P(Text, Diags);
  auto M = P.run();
  if (Diags.hasErrors())
    return nullptr;
  return M;
}
