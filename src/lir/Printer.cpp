//===--- Printer.cpp ------------------------------------------------------===//

#include "lir/Printer.h"
#include <cmath>
#include <sstream>
#include <unordered_map>

using namespace laminar;
using namespace laminar::lir;

namespace {

class FunctionPrinter {
public:
  explicit FunctionPrinter(const Function &F) : F(F) {
    unsigned Next = 0;
    for (const auto &BB : F.blocks())
      for (const auto &I : BB->instructions())
        if (I->getType() != TypeKind::Void)
          Names[I.get()] = Next++;
  }

  void print(std::ostringstream &OS) {
    OS << "func @" << F.getName() << " {\n";
    for (const auto &BB : F.blocks()) {
      OS << BB->getName() << ":\n";
      for (const auto &I : BB->instructions()) {
        OS << "  ";
        printInst(OS, I.get());
        OS << "\n";
      }
    }
    OS << "}\n";
  }

private:
  std::string ref(const Value *V) const {
    std::ostringstream OS;
    if (auto *CI = dyn_cast<ConstInt>(V)) {
      OS << CI->getValue();
    } else if (auto *CF = dyn_cast<ConstFloat>(V)) {
      // Full precision so the textual form parses back bit-exact.
      OS.precision(17);
      OS << CF->getValue();
      double Int;
      if (std::modf(CF->getValue(), &Int) == 0.0 &&
          OS.str().find_first_of(".eE") == std::string::npos)
        OS << ".0";
    } else if (auto *CB = dyn_cast<ConstBool>(V)) {
      OS << (CB->getValue() ? "true" : "false");
    } else {
      auto It = Names.find(V);
      if (It == Names.end())
        OS << "%<badref>";
      else
        OS << "%" << It->second;
    }
    return OS.str();
  }

  void printInst(std::ostringstream &OS, const Instruction *I) const;

  const Function &F;
  std::unordered_map<const Value *, unsigned> Names;
};

} // namespace

void FunctionPrinter::printInst(std::ostringstream &OS,
                                const Instruction *I) const {
  if (I->getType() != TypeKind::Void)
    OS << ref(I) << " = ";
  switch (I->getKind()) {
  case Value::Kind::Binary: {
    const auto *B = cast<BinaryInst>(I);
    OS << binOpName(B->getOp()) << " " << ref(B->getLHS()) << ", "
       << ref(B->getRHS());
    break;
  }
  case Value::Kind::Unary: {
    const auto *U = cast<UnaryInst>(I);
    OS << unOpName(U->getOp()) << " " << ref(U->getOperand(0));
    break;
  }
  case Value::Kind::Cmp: {
    const auto *C = cast<CmpInst>(I);
    OS << (C->isFloatCmp() ? "fcmp " : "icmp ") << cmpPredName(C->getPred())
       << " " << ref(C->getLHS()) << ", " << ref(C->getRHS());
    break;
  }
  case Value::Kind::Cast: {
    const auto *C = cast<CastInst>(I);
    OS << castOpName(C->getOp()) << " " << ref(C->getOperand(0));
    break;
  }
  case Value::Kind::Select: {
    const auto *S = cast<SelectInst>(I);
    OS << "select " << ref(S->getCond()) << ", " << ref(S->getTrueValue())
       << ", " << ref(S->getFalseValue());
    break;
  }
  case Value::Kind::Call: {
    const auto *C = cast<CallInst>(I);
    OS << "call " << builtinName(C->getBuiltin()) << "(";
    for (unsigned K = 0; K < C->getNumOperands(); ++K) {
      if (K)
        OS << ", ";
      OS << ref(C->getOperand(K));
    }
    OS << ")";
    break;
  }
  case Value::Kind::Input:
    OS << "input";
    break;
  case Value::Kind::Output:
    OS << "output " << ref(I->getOperand(0));
    break;
  case Value::Kind::Load: {
    const auto *L = cast<LoadInst>(I);
    OS << "load @" << L->getGlobal()->getName() << "[" << ref(L->getIndex())
       << "]";
    break;
  }
  case Value::Kind::Store: {
    const auto *S = cast<StoreInst>(I);
    OS << "store @" << S->getGlobal()->getName() << "[" << ref(S->getIndex())
       << "], " << ref(S->getValue());
    break;
  }
  case Value::Kind::Phi: {
    const auto *P = cast<PhiInst>(I);
    OS << "phi ";
    for (unsigned K = 0; K < P->getNumIncoming(); ++K) {
      if (K)
        OS << ", ";
      OS << "[ " << ref(P->getIncomingValue(K)) << ", "
         << P->getIncomingBlock(K)->getName() << " ]";
    }
    break;
  }
  case Value::Kind::Br:
    OS << "br " << cast<BrInst>(I)->getTarget()->getName();
    break;
  case Value::Kind::CondBr: {
    const auto *B = cast<CondBrInst>(I);
    OS << "condbr " << ref(B->getCond()) << ", "
       << B->getTrueBlock()->getName() << ", "
       << B->getFalseBlock()->getName();
    break;
  }
  case Value::Kind::Ret:
    OS << "ret";
    break;
  default:
    OS << "<unknown>";
    break;
  }
}

std::string lir::printFunction(const Function &F) {
  std::ostringstream OS;
  FunctionPrinter(F).print(OS);
  return OS.str();
}

std::string lir::printModule(const Module &M) {
  std::ostringstream OS;
  OS << "module " << M.getName() << "\n";
  OS << "input " << typeName(M.getInputType()) << "\n";
  OS << "output " << typeName(M.getOutputType()) << "\n";
  for (const auto &G : M.globals()) {
    OS << "global @" << G->getName() << " : " << typeName(G->getElemType());
    if (G->getSize() != 1)
      OS << "[" << G->getSize() << "]";
    OS << " " << memClassName(G->getMemClass());
    if (G->hasInit()) {
      OS << " = {";
      OS.precision(17);
      if (G->getElemType() == TypeKind::Float) {
        for (size_t K = 0; K < G->floatInit().size(); ++K)
          OS << (K ? ", " : "") << G->floatInit()[K];
      } else {
        for (size_t K = 0; K < G->intInit().size(); ++K)
          OS << (K ? ", " : "") << G->intInit()[K];
      }
      OS << "}";
    }
    OS << "\n";
  }
  for (const auto &F : M.functions()) {
    FunctionPrinter(*F).print(OS);
  }
  return OS.str();
}
