//===--- Dominators.cpp ---------------------------------------------------===//

#include "lir/Dominators.h"
#include <algorithm>
#include <cassert>
#include <unordered_set>

using namespace laminar;
using namespace laminar::lir;

DomTree::DomTree(const Function &F) {
  BasicBlock *Entry = F.entry();
  if (!Entry)
    return;

  // Postorder DFS, then reverse.
  std::unordered_set<const BasicBlock *> Visited;
  std::vector<std::pair<BasicBlock *, size_t>> Stack;
  std::vector<BasicBlock *> Post;
  Stack.push_back({Entry, 0});
  Visited.insert(Entry);
  while (!Stack.empty()) {
    auto &[BB, NextSucc] = Stack.back();
    std::vector<BasicBlock *> Succs = BB->successors();
    if (NextSucc < Succs.size()) {
      BasicBlock *S = Succs[NextSucc++];
      if (Visited.insert(S).second)
        Stack.push_back({S, 0});
      continue;
    }
    Post.push_back(BB);
    Stack.pop_back();
  }
  RPO.assign(Post.rbegin(), Post.rend());
  for (unsigned I = 0; I < RPO.size(); ++I)
    Index[RPO[I]] = I;

  // Cooper-Harvey-Kennedy iteration.
  constexpr unsigned Undef = ~0u;
  IDom.assign(RPO.size(), Undef);
  IDom[0] = 0;
  auto Intersect = [this](unsigned A, unsigned B) {
    while (A != B) {
      while (A > B)
        A = IDom[A];
      while (B > A)
        B = IDom[B];
    }
    return A;
  };
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned I = 1; I < RPO.size(); ++I) {
      unsigned NewIDom = Undef;
      for (BasicBlock *Pred : RPO[I]->predecessors()) {
        auto It = Index.find(Pred);
        if (It == Index.end() || IDom[It->second] == Undef)
          continue;
        NewIDom = NewIDom == Undef ? It->second
                                   : Intersect(NewIDom, It->second);
      }
      assert(NewIDom != Undef && "reachable block without processed pred");
      if (IDom[I] != NewIDom) {
        IDom[I] = NewIDom;
        Changed = true;
      }
    }
  }
}

bool DomTree::dominates(const BasicBlock *A, const BasicBlock *B) const {
  auto ItA = Index.find(A);
  auto ItB = Index.find(B);
  if (ItA == Index.end() || ItB == Index.end())
    return false;
  unsigned IA = ItA->second, IB = ItB->second;
  while (IB > IA)
    IB = IDom[IB];
  return IB == IA;
}

const BasicBlock *DomTree::idom(const BasicBlock *BB) const {
  auto It = Index.find(BB);
  if (It == Index.end() || It->second == 0)
    return nullptr;
  return RPO[IDom[It->second]];
}

std::vector<BasicBlock *> DomTree::childrenOf(const BasicBlock *BB) const {
  std::vector<BasicBlock *> Children;
  auto It = Index.find(BB);
  if (It == Index.end())
    return Children;
  for (unsigned I = 1; I < RPO.size(); ++I)
    if (IDom[I] == It->second)
      Children.push_back(RPO[I]);
  return Children;
}
