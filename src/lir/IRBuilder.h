//===--- IRBuilder.h - Instruction creation with folding -------*- C++ -*-===//
//
// Convenience interface for emitting instructions at the end of a block.
// The builder folds operations over constants at creation time; the
// Laminar lowering depends on this so that peek indices computed from
// unrolled loop counters resolve to ConstInt at compile time.
//
//===----------------------------------------------------------------------===//

#ifndef LAMINAR_LIR_IRBUILDER_H
#define LAMINAR_LIR_IRBUILDER_H

#include "lir/Module.h"

namespace laminar {
namespace lir {

/// Folds a binary operation over constant operands; returns null when the
/// operands are not constant or the fold is unsafe (division by zero).
Value *foldBinary(Module &M, BinOp Op, Value *LHS, Value *RHS);
Value *foldUnary(Module &M, UnOp Op, Value *V);
Value *foldCmp(Module &M, CmpPred Pred, Value *LHS, Value *RHS);
Value *foldCast(Module &M, CastOp Op, Value *V);
Value *foldCall(Module &M, Builtin B, const std::vector<Value *> &Args);
Value *foldSelect(Value *Cond, Value *TrueV, Value *FalseV);

class IRBuilder {
public:
  explicit IRBuilder(Module &M, bool FoldConstants = true)
      : M(M), FoldConstants(FoldConstants) {}

  Module &getModule() { return M; }

  void setInsertPoint(BasicBlock *Block) { BB = Block; }
  BasicBlock *getInsertBlock() const { return BB; }

  /// Source location stamped onto every subsequently created
  /// instruction; {0,0} (the default) marks synthesized code.
  void setCurLoc(SourceLoc L) { CurLoc = L; }
  SourceLoc getCurLoc() const { return CurLoc; }

  /// Operations resolved to constants at construction time. In the
  /// Laminar lowering this is where most of the "enabling effect"
  /// materializes (the unrolled token flow partial-evaluates).
  uint64_t getNumConstFolds() const { return NumConstFolds; }

  ConstInt *getInt(int64_t V) { return M.getConstInt(V); }
  ConstFloat *getFloat(double V) { return M.getConstFloat(V); }
  ConstBool *getBool(bool V) { return M.getConstBool(V); }

  Value *createBinary(BinOp Op, Value *LHS, Value *RHS);
  Value *createUnary(UnOp Op, Value *V);
  Value *createCmp(CmpPred Pred, Value *LHS, Value *RHS);
  Value *createCast(CastOp Op, Value *V);
  Value *createSelect(Value *Cond, Value *TrueV, Value *FalseV);
  Value *createCall(Builtin B, const std::vector<Value *> &Args);
  Value *createInput(TypeKind Ty);
  void createOutput(Value *V);
  Value *createLoad(GlobalVar *G, Value *Index);
  void createStore(GlobalVar *G, Value *Index, Value *V);

  /// Creates a phi and inserts it after any existing phis of the block.
  PhiInst *createPhi(TypeKind Ty, BasicBlock *Block);

  void createBr(BasicBlock *Target);
  void createCondBr(Value *Cond, BasicBlock *TrueBB, BasicBlock *FalseBB);
  void createRet();

  /// Converts \p V to \p Ty, inserting a cast when needed. Only the
  /// int/float/bool conversions expressible in the IR are supported.
  Value *convert(Value *V, TypeKind Ty);

private:
  Instruction *insert(std::unique_ptr<Instruction> I);

  Module &M;
  BasicBlock *BB = nullptr;
  bool FoldConstants;
  uint64_t NumConstFolds = 0;
  SourceLoc CurLoc;
};

} // namespace lir
} // namespace laminar

#endif // LAMINAR_LIR_IRBUILDER_H
