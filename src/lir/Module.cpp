//===--- Module.cpp -------------------------------------------------------===//

#include "lir/Module.h"
#include <cassert>

using namespace laminar;
using namespace laminar::lir;

const char *lir::memClassName(MemClass MC) {
  switch (MC) {
  case MemClass::State:
    return "state";
  case MemClass::ChannelBuf:
    return "buf";
  case MemClass::ChannelHead:
    return "head";
  case MemClass::ChannelTail:
    return "tail";
  case MemClass::LiveToken:
    return "live";
  }
  return "?";
}

Function *Module::createFunction(const std::string &FnName) {
  assert(!getFunction(FnName) && "duplicate function name");
  Funcs.push_back(std::make_unique<Function>(FnName, this));
  return Funcs.back().get();
}

Function *Module::getFunction(const std::string &FnName) const {
  for (const auto &F : Funcs)
    if (F->getName() == FnName)
      return F.get();
  return nullptr;
}

GlobalVar *Module::createGlobal(const std::string &GName, TypeKind Elem,
                                int64_t Size, MemClass MC) {
  assert(Size > 0 && "global with non-positive size");
  assert(isTokenType(Elem) && "globals hold token types only");
  Globals.push_back(std::make_unique<GlobalVar>(GName, Elem, Size, MC));
  return Globals.back().get();
}

uint32_t Module::numberGlobals() {
  uint32_t Next = 0;
  for (const auto &G : Globals)
    G->setSlot(Next++);
  return Next;
}

ConstInt *Module::getConstInt(int64_t V) {
  auto &Slot = IntConsts[V];
  if (!Slot)
    Slot = std::make_unique<ConstInt>(V);
  return Slot.get();
}

ConstFloat *Module::getConstFloat(double V) {
  uint64_t Bits;
  static_assert(sizeof(Bits) == sizeof(V));
  std::memcpy(&Bits, &V, sizeof(Bits));
  auto &Slot = FloatConsts[Bits];
  if (!Slot)
    Slot = std::make_unique<ConstFloat>(V);
  return Slot.get();
}

ConstBool *Module::getConstBool(bool V) {
  auto &Slot = V ? TrueConst : FalseConst;
  if (!Slot)
    Slot = std::make_unique<ConstBool>(V);
  return Slot.get();
}

size_t Module::instructionCount() const {
  size_t N = 0;
  for (const auto &F : Funcs)
    N += F->instructionCount();
  return N;
}
