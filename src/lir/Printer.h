//===--- Printer.h - Textual LaminarIR -------------------------*- C++ -*-===//

#ifndef LAMINAR_LIR_PRINTER_H
#define LAMINAR_LIR_PRINTER_H

#include "lir/Module.h"
#include <string>

namespace laminar {
namespace lir {

/// Renders a whole module in the textual LaminarIR format.
std::string printModule(const Module &M);

/// Renders a single function.
std::string printFunction(const Function &F);

} // namespace lir
} // namespace laminar

#endif // LAMINAR_LIR_PRINTER_H
