//===--- Function.h - LaminarIR functions ----------------------*- C++ -*-===//

#ifndef LAMINAR_LIR_FUNCTION_H
#define LAMINAR_LIR_FUNCTION_H

#include "lir/BasicBlock.h"
#include <memory>
#include <string>
#include <vector>

namespace laminar {
namespace lir {

class Module;

/// A function: a CFG of basic blocks. The first block is the entry. All
/// LaminarIR functions take no arguments and return void; state flows
/// through globals and the external input/output streams.
class Function {
public:
  Function(std::string Name, Module *Parent)
      : Name(std::move(Name)), Parent(Parent) {}

  /// Detaches every instruction from its operands before any of them is
  /// destroyed: instructions may reference instructions in other blocks
  /// and module-owned constants, whose destruction order is unrelated.
  ~Function();

  const std::string &getName() const { return Name; }
  Module *getParent() const { return Parent; }

  /// Creates and appends a new empty block named \p BlockName plus a
  /// fresh numeric suffix.
  BasicBlock *createBlock(const std::string &BlockName);

  /// Creates and appends a new empty block with \p Label used verbatim.
  /// Used by the textual IR parser, whose labels are already unique;
  /// preserving them keeps print -> parse -> print a fixpoint.
  BasicBlock *createBlockWithLabel(const std::string &Label);

  const std::vector<std::unique_ptr<BasicBlock>> &blocks() const {
    return Blocks;
  }
  BasicBlock *entry() const {
    return Blocks.empty() ? nullptr : Blocks.front().get();
  }
  size_t size() const { return Blocks.size(); }

  /// Destroys blocks for which \p Dead is set (parallel to blocks()).
  void eraseMarkedBlocks(const std::vector<bool> &Dead);

  /// Assigns a dense slot id to every instruction; returns the count.
  /// The interpreter sizes its register file from the result.
  uint32_t numberValues();

  /// Total instruction count over all blocks.
  size_t instructionCount() const;

private:
  std::string Name;
  Module *Parent;
  std::vector<std::unique_ptr<BasicBlock>> Blocks;
  unsigned NextBlockId = 0;
};

} // namespace lir
} // namespace laminar

#endif // LAMINAR_LIR_FUNCTION_H
