//===--- Instruction.cpp --------------------------------------------------===//

#include "lir/Instruction.h"
#include "lir/BasicBlock.h"
#include "lir/Module.h"

using namespace laminar;
using namespace laminar::lir;

void Instruction::addOperand(Value *V) {
  assert(V && "null operand");
  Ops.push_back(V);
  V->addUser(this);
}

void Instruction::setOperand(unsigned I, Value *V) {
  assert(I < Ops.size() && "operand index out of range");
  assert(V && "null operand");
  Ops[I]->removeUser(this);
  Ops[I] = V;
  V->addUser(this);
}

void Instruction::removeOperand(unsigned I) {
  assert(I < Ops.size() && "operand index out of range");
  Ops[I]->removeUser(this);
  Ops.erase(Ops.begin() + I);
}

void Instruction::dropOperands() {
  for (Value *Op : Ops)
    Op->removeUser(this);
  Ops.clear();
}

const char *lir::binOpName(BinOp Op) {
  switch (Op) {
  case BinOp::Add:
    return "add";
  case BinOp::Sub:
    return "sub";
  case BinOp::Mul:
    return "mul";
  case BinOp::Div:
    return "div";
  case BinOp::Rem:
    return "rem";
  case BinOp::And:
    return "and";
  case BinOp::Or:
    return "or";
  case BinOp::Xor:
    return "xor";
  case BinOp::Shl:
    return "shl";
  case BinOp::Shr:
    return "shr";
  case BinOp::FAdd:
    return "fadd";
  case BinOp::FSub:
    return "fsub";
  case BinOp::FMul:
    return "fmul";
  case BinOp::FDiv:
    return "fdiv";
  }
  return "?";
}

bool lir::isFloatBinOp(BinOp Op) {
  switch (Op) {
  case BinOp::FAdd:
  case BinOp::FSub:
  case BinOp::FMul:
  case BinOp::FDiv:
    return true;
  default:
    return false;
  }
}

const char *lir::unOpName(UnOp Op) {
  switch (Op) {
  case UnOp::Neg:
    return "neg";
  case UnOp::FNeg:
    return "fneg";
  case UnOp::Not:
    return "not";
  case UnOp::BitNot:
    return "bitnot";
  }
  return "?";
}

const char *lir::cmpPredName(CmpPred P) {
  switch (P) {
  case CmpPred::EQ:
    return "eq";
  case CmpPred::NE:
    return "ne";
  case CmpPred::LT:
    return "lt";
  case CmpPred::LE:
    return "le";
  case CmpPred::GT:
    return "gt";
  case CmpPred::GE:
    return "ge";
  }
  return "?";
}

const char *lir::castOpName(CastOp Op) {
  switch (Op) {
  case CastOp::IntToFloat:
    return "itof";
  case CastOp::FloatToInt:
    return "ftoi";
  case CastOp::BoolToInt:
    return "btoi";
  }
  return "?";
}

const char *lir::builtinName(Builtin B) {
  switch (B) {
  case Builtin::Sin:
    return "sin";
  case Builtin::Cos:
    return "cos";
  case Builtin::Tan:
    return "tan";
  case Builtin::Atan:
    return "atan";
  case Builtin::Atan2:
    return "atan2";
  case Builtin::Exp:
    return "exp";
  case Builtin::Log:
    return "log";
  case Builtin::Sqrt:
    return "sqrt";
  case Builtin::Fabs:
    return "fabs";
  case Builtin::Floor:
    return "floor";
  case Builtin::Ceil:
    return "ceil";
  case Builtin::Pow:
    return "pow";
  case Builtin::Fmod:
    return "fmod";
  case Builtin::AbsI:
    return "absi";
  case Builtin::MinI:
    return "mini";
  case Builtin::MaxI:
    return "maxi";
  case Builtin::MinF:
    return "minf";
  case Builtin::MaxF:
    return "maxf";
  }
  return "?";
}

unsigned lir::builtinArity(Builtin B) {
  switch (B) {
  case Builtin::Atan2:
  case Builtin::Pow:
  case Builtin::Fmod:
  case Builtin::MinI:
  case Builtin::MaxI:
  case Builtin::MinF:
  case Builtin::MaxF:
    return 2;
  default:
    return 1;
  }
}

TypeKind lir::builtinResultType(Builtin B) {
  switch (B) {
  case Builtin::AbsI:
  case Builtin::MinI:
  case Builtin::MaxI:
    return TypeKind::Int;
  default:
    return TypeKind::Float;
  }
}

TypeKind lir::builtinArgType(Builtin B) {
  switch (B) {
  case Builtin::AbsI:
  case Builtin::MinI:
  case Builtin::MaxI:
    return TypeKind::Int;
  default:
    return TypeKind::Float;
  }
}

LoadInst::LoadInst(GlobalVar *G, Value *Index)
    : Instruction(Kind::Load, G->getElemType()), Global(G) {
  addOperand(Index);
}

StoreInst::StoreInst(GlobalVar *G, Value *Index, Value *V)
    : Instruction(Kind::Store, TypeKind::Void), Global(G) {
  assert(V->getType() == G->getElemType() && "store type mismatch");
  addOperand(Index);
  addOperand(V);
}

Value *PhiInst::getIncomingForBlock(const BasicBlock *BB) const {
  for (unsigned I = 0, E = getNumIncoming(); I != E; ++I)
    if (Blocks[I] == BB)
      return getIncomingValue(I);
  return nullptr;
}

void PhiInst::removeIncomingForBlock(const BasicBlock *BB) {
  for (unsigned I = 0; I < getNumIncoming();) {
    if (Blocks[I] == BB)
      removeIncoming(I);
    else
      ++I;
  }
}
