//===--- Verifier.cpp -----------------------------------------------------===//

#include "lir/Verifier.h"
#include "lir/Dominators.h"
#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

using namespace laminar;
using namespace laminar::lir;

namespace {

class VerifierImpl {
public:
  VerifierImpl(const Module &M, bool BoundsCheckConstIndices)
      : M(M), BoundsCheckConstIndices(BoundsCheckConstIndices) {}

  std::vector<std::string> run() {
    for (const auto &F : M.functions())
      verifyFunction(*F);
    return std::move(Errors);
  }

private:
  void fail(const Function &F, const BasicBlock *BB, const std::string &Msg) {
    std::ostringstream OS;
    OS << "in @" << F.getName();
    if (BB)
      OS << ", block " << BB->getName();
    OS << ": " << Msg;
    Errors.push_back(OS.str());
  }

  void verifyFunction(const Function &F);
  void verifyInstruction(const Function &F, const BasicBlock *BB,
                         const Instruction *I);
  void verifyDominance(const Function &F, const DomTree &DT);

  // A constant index outside the global's declared size in freshly
  // lowered IR is a lowering bug: every lowering path either proves
  // the index or rejects the program before IR exists. (Off after
  // optimization — folding can surface a legitimate run-time trap as
  // a constant index.)
  void checkConstIndex(const Function &F, const BasicBlock *BB,
                       const Value *Index, const GlobalVar *G,
                       const char *What) {
    if (!BoundsCheckConstIndices)
      return;
    const auto *C = dyn_cast<ConstInt>(Index);
    if (!C)
      return;
    if (C->getValue() < 0 || C->getValue() >= G->getSize()) {
      std::ostringstream OS;
      OS << What << " index " << C->getValue() << " out of bounds for @"
         << G->getName() << " of size " << G->getSize();
      fail(F, BB, OS.str());
    }
  }

  const Module &M;
  bool BoundsCheckConstIndices;
  std::vector<std::string> Errors;
  // Per-function position of each instruction for same-block dominance.
  std::unordered_map<const Instruction *, std::pair<const BasicBlock *, size_t>>
      Position;
};

} // namespace

void VerifierImpl::verifyFunction(const Function &F) {
  if (F.blocks().empty()) {
    fail(F, nullptr, "function has no blocks");
    return;
  }

  Position.clear();
  for (const auto &BB : F.blocks()) {
    if (BB->empty()) {
      fail(F, BB.get(), "empty block");
      continue;
    }
    // Exactly one terminator, at the end; phis only at the start.
    bool SeenNonPhi = false;
    const auto &Insts = BB->instructions();
    for (size_t Idx = 0; Idx < Insts.size(); ++Idx) {
      const Instruction *I = Insts[Idx].get();
      Position[I] = {BB.get(), Idx};
      if (I->getParent() != BB.get())
        fail(F, BB.get(), "instruction with wrong parent link");
      if (I->isTerminator() && Idx + 1 != Insts.size())
        fail(F, BB.get(), "terminator before end of block");
      if (isa<PhiInst>(I)) {
        if (SeenNonPhi)
          fail(F, BB.get(), "phi after non-phi instruction");
      } else {
        SeenNonPhi = true;
      }
    }
    if (!BB->terminator())
      fail(F, BB.get(), "block lacks a terminator");
  }
  if (!Errors.empty())
    return; // Structure is broken; later checks would crash.

  // Predecessor lists match terminator successors.
  std::unordered_map<const BasicBlock *, std::vector<const BasicBlock *>>
      ExpectedPreds;
  for (const auto &BB : F.blocks())
    for (BasicBlock *Succ : BB->successors())
      ExpectedPreds[Succ].push_back(BB.get());
  for (const auto &BB : F.blocks()) {
    auto Expected = ExpectedPreds[BB.get()];
    std::vector<const BasicBlock *> Actual(BB->predecessors().begin(),
                                           BB->predecessors().end());
    std::sort(Expected.begin(), Expected.end());
    std::sort(Actual.begin(), Actual.end());
    if (Expected != Actual)
      fail(F, BB.get(), "predecessor list disagrees with CFG");
  }

  for (const auto &BB : F.blocks())
    for (const auto &I : BB->instructions())
      verifyInstruction(F, BB.get(), I.get());

  DomTree DT(F);
  verifyDominance(F, DT);
}

void VerifierImpl::verifyInstruction(const Function &F, const BasicBlock *BB,
                                     const Instruction *I) {
  // Operand types.
  auto Expect = [&](const Value *V, TypeKind Ty, const char *What) {
    if (V->getType() != Ty) {
      std::ostringstream OS;
      OS << What << " has type " << typeName(V->getType()) << ", expected "
         << typeName(Ty);
      fail(F, BB, OS.str());
    }
  };

  if (auto *B = dyn_cast<BinaryInst>(I)) {
    TypeKind Ty = isFloatBinOp(B->getOp()) ? TypeKind::Float : TypeKind::Int;
    Expect(B->getLHS(), Ty, "binary lhs");
    Expect(B->getRHS(), Ty, "binary rhs");
  } else if (auto *C = dyn_cast<CmpInst>(I)) {
    if (C->getLHS()->getType() != C->getRHS()->getType())
      fail(F, BB, "cmp operands of different types");
  } else if (auto *S = dyn_cast<SelectInst>(I)) {
    Expect(S->getCond(), TypeKind::Bool, "select condition");
    if (S->getTrueValue()->getType() != S->getFalseValue()->getType())
      fail(F, BB, "select arms of different types");
  } else if (auto *CB = dyn_cast<CondBrInst>(I)) {
    Expect(CB->getCond(), TypeKind::Bool, "branch condition");
  } else if (auto *L = dyn_cast<LoadInst>(I)) {
    Expect(L->getIndex(), TypeKind::Int, "load index");
    checkConstIndex(F, BB, L->getIndex(), L->getGlobal(), "load");
  } else if (auto *St = dyn_cast<StoreInst>(I)) {
    Expect(St->getIndex(), TypeKind::Int, "store index");
    Expect(St->getValue(), St->getGlobal()->getElemType(), "stored value");
    checkConstIndex(F, BB, St->getIndex(), St->getGlobal(), "store");
  } else if (auto *Phi = dyn_cast<PhiInst>(I)) {
    // One incoming per predecessor, each listed exactly once.
    std::vector<const BasicBlock *> PhiPreds;
    for (unsigned K = 0; K < Phi->getNumIncoming(); ++K) {
      PhiPreds.push_back(Phi->getIncomingBlock(K));
      if (Phi->getIncomingValue(K)->getType() != Phi->getType())
        fail(F, BB, "phi incoming value type mismatch");
    }
    std::vector<const BasicBlock *> Preds(BB->predecessors().begin(),
                                          BB->predecessors().end());
    std::sort(PhiPreds.begin(), PhiPreds.end());
    std::sort(Preds.begin(), Preds.end());
    if (Phi->hasUses() && PhiPreds != Preds)
      fail(F, BB, "phi incoming blocks disagree with predecessors");
  }
}

void VerifierImpl::verifyDominance(const Function &F, const DomTree &DT) {
  for (const auto &BB : F.blocks()) {
    if (!DT.isReachable(BB.get()))
      continue;
    for (const auto &I : BB->instructions()) {
      for (unsigned K = 0; K < I->getNumOperands(); ++K) {
        const Value *Op = I->getOperand(K);
        if (Op->isConstant())
          continue;
        const auto *Def = cast<Instruction>(Op);
        auto It = Position.find(Def);
        if (It == Position.end()) {
          fail(F, BB.get(), "operand defined outside the function");
          continue;
        }
        const BasicBlock *DefBB = It->second.first;
        size_t DefIdx = It->second.second;
        // For a phi, the use happens at the end of the incoming block.
        const BasicBlock *UseBB = BB.get();
        size_t UseIdx = Position[I.get()].second;
        if (const auto *Phi = dyn_cast<PhiInst>(I.get())) {
          UseBB = Phi->getIncomingBlock(K);
          UseIdx = UseBB->size();
        }
        if (!DT.isReachable(UseBB))
          continue;
        bool Ok = DefBB == UseBB ? DefIdx < UseIdx
                                 : DT.dominates(DefBB, UseBB);
        if (!Ok)
          fail(F, BB.get(), "definition does not dominate use");
      }
    }
  }
}

std::vector<std::string> lir::verifyModule(const Module &M,
                                           bool BoundsCheckConstIndices) {
  return VerifierImpl(M, BoundsCheckConstIndices).run();
}

bool lir::verify(const Module &M) { return verifyModule(M).empty(); }
