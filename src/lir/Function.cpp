//===--- Function.cpp -----------------------------------------------------===//

#include "lir/Function.h"
#include <sstream>

using namespace laminar;
using namespace laminar::lir;

Function::~Function() {
  for (const auto &BB : Blocks)
    for (const auto &I : BB->instructions())
      I->dropOperands();
}

BasicBlock *Function::createBlock(const std::string &BlockName) {
  std::ostringstream OS;
  OS << BlockName << NextBlockId++;
  return createBlockWithLabel(OS.str());
}

BasicBlock *Function::createBlockWithLabel(const std::string &Label) {
  Blocks.push_back(std::make_unique<BasicBlock>(Label, this));
  return Blocks.back().get();
}

void Function::eraseMarkedBlocks(const std::vector<bool> &Dead) {
  size_t Out = 0;
  for (size_t I = 0, E = Blocks.size(); I != E; ++I) {
    if (Dead[I])
      continue;
    if (Out != I)
      Blocks[Out] = std::move(Blocks[I]);
    ++Out;
  }
  Blocks.resize(Out);
}

uint32_t Function::numberValues() {
  uint32_t Next = 0;
  for (const auto &BB : Blocks)
    for (const auto &I : BB->instructions())
      I->setSlot(Next++);
  return Next;
}

size_t Function::instructionCount() const {
  size_t N = 0;
  for (const auto &BB : Blocks)
    N += BB->size();
  return N;
}
