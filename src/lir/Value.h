//===--- Value.h - Base class of the LaminarIR value hierarchy -*- C++ -*-===//
//
// Every SSA value is either a constant (uniqued per module) or an
// instruction. Values keep a list of the instructions that use them so
// that passes can perform replaceAllUsesWith without scanning the module.
//
//===----------------------------------------------------------------------===//

#ifndef LAMINAR_LIR_VALUE_H
#define LAMINAR_LIR_VALUE_H

#include "lir/Type.h"
#include <cstdint>
#include <vector>

namespace laminar {
namespace lir {

class Instruction;

/// Base of the SSA value hierarchy. The Kind enum covers the whole closed
/// hierarchy; subclasses implement classof for isa/cast/dyn_cast.
class Value {
public:
  enum class Kind {
    ConstInt,
    ConstFloat,
    ConstBool,
    // Instructions. Keep InstBegin/InstEnd bracketing all instruction
    // kinds so Instruction::classof is a range check.
    InstBegin,
    Binary,
    Unary,
    Cmp,
    Cast,
    Select,
    Call,
    Input,
    Output,
    Load,
    Store,
    Phi,
    Br,
    CondBr,
    Ret,
    InstEnd,
  };

  Value(const Value &) = delete;
  Value &operator=(const Value &) = delete;
  virtual ~Value() = default;

  Kind getKind() const { return TheKind; }
  TypeKind getType() const { return Ty; }

  /// Instructions currently using this value as an operand. A user
  /// appears once per operand slot that references this value.
  const std::vector<Instruction *> &users() const { return Users; }
  bool hasUses() const { return !Users.empty(); }

  /// Rewrites every use of this value to use \p New instead.
  void replaceAllUsesWith(Value *New);

  bool isConstant() const { return TheKind < Kind::InstBegin; }

protected:
  Value(Kind K, TypeKind Ty) : TheKind(K), Ty(Ty) {}

  /// Type is fixed at construction except for phis created before their
  /// incoming values are known (SSA construction); those may refine it.
  void setType(TypeKind NewTy) { Ty = NewTy; }

private:
  friend class Instruction;
  void addUser(Instruction *I) { Users.push_back(I); }
  void removeUser(Instruction *I);

  Kind TheKind;
  TypeKind Ty;
  std::vector<Instruction *> Users;
};

/// A 64-bit integer constant, uniqued by the owning module.
class ConstInt : public Value {
public:
  explicit ConstInt(int64_t V) : Value(Kind::ConstInt, TypeKind::Int), V(V) {}

  int64_t getValue() const { return V; }

  static bool classof(const Value *Val) {
    return Val->getKind() == Kind::ConstInt;
  }

private:
  int64_t V;
};

/// A double-precision constant, uniqued by bit pattern.
class ConstFloat : public Value {
public:
  explicit ConstFloat(double V)
      : Value(Kind::ConstFloat, TypeKind::Float), V(V) {}

  double getValue() const { return V; }

  static bool classof(const Value *Val) {
    return Val->getKind() == Kind::ConstFloat;
  }

private:
  double V;
};

/// A boolean constant (the two values are uniqued).
class ConstBool : public Value {
public:
  explicit ConstBool(bool V) : Value(Kind::ConstBool, TypeKind::Bool), V(V) {}

  bool getValue() const { return V; }

  static bool classof(const Value *Val) {
    return Val->getKind() == Kind::ConstBool;
  }

private:
  bool V;
};

} // namespace lir
} // namespace laminar

#endif // LAMINAR_LIR_VALUE_H
