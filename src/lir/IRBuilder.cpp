//===--- IRBuilder.cpp ----------------------------------------------------===//

#include "lir/IRBuilder.h"
#include <cassert>
#include <cmath>
#include <limits>

using namespace laminar;
using namespace laminar::lir;

// Wrapping signed arithmetic without undefined behaviour.
static int64_t wrapAdd(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) +
                              static_cast<uint64_t>(B));
}
static int64_t wrapSub(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) -
                              static_cast<uint64_t>(B));
}
static int64_t wrapMul(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) *
                              static_cast<uint64_t>(B));
}

/// Arithmetic (sign-preserving) right shift with a masked shift amount;
/// mirrors the interpreter and the generated C.
int64_t shiftRightArith(int64_t A, int64_t B);
int64_t shiftRightArith(int64_t A, int64_t B) {
  unsigned Amt = static_cast<unsigned>(B) & 63u;
  if (A >= 0)
    return static_cast<int64_t>(static_cast<uint64_t>(A) >> Amt);
  // Shift the complement so the result rounds toward negative infinity.
  return ~static_cast<int64_t>(static_cast<uint64_t>(~A) >> Amt);
}

Value *lir::foldBinary(Module &M, BinOp Op, Value *LHS, Value *RHS) {
  if (isFloatBinOp(Op)) {
    auto *L = dyn_cast<ConstFloat>(LHS);
    auto *R = dyn_cast<ConstFloat>(RHS);
    if (!L || !R)
      return nullptr;
    double A = L->getValue(), B = R->getValue();
    switch (Op) {
    case BinOp::FAdd:
      return M.getConstFloat(A + B);
    case BinOp::FSub:
      return M.getConstFloat(A - B);
    case BinOp::FMul:
      return M.getConstFloat(A * B);
    case BinOp::FDiv:
      return B == 0.0 ? nullptr : M.getConstFloat(A / B);
    default:
      return nullptr;
    }
  }
  auto *L = dyn_cast<ConstInt>(LHS);
  auto *R = dyn_cast<ConstInt>(RHS);
  if (!L || !R)
    return nullptr;
  int64_t A = L->getValue(), B = R->getValue();
  switch (Op) {
  case BinOp::Add:
    return M.getConstInt(wrapAdd(A, B));
  case BinOp::Sub:
    return M.getConstInt(wrapSub(A, B));
  case BinOp::Mul:
    return M.getConstInt(wrapMul(A, B));
  case BinOp::Div:
    if (B == 0 || (A == std::numeric_limits<int64_t>::min() && B == -1))
      return nullptr;
    return M.getConstInt(A / B);
  case BinOp::Rem:
    if (B == 0 || (A == std::numeric_limits<int64_t>::min() && B == -1))
      return nullptr;
    return M.getConstInt(A % B);
  case BinOp::And:
    return M.getConstInt(A & B);
  case BinOp::Or:
    return M.getConstInt(A | B);
  case BinOp::Xor:
    return M.getConstInt(A ^ B);
  case BinOp::Shl:
    return M.getConstInt(static_cast<int64_t>(static_cast<uint64_t>(A)
                                              << (B & 63)));
  case BinOp::Shr:
    return M.getConstInt(shiftRightArith(A, B));
  default:
    return nullptr;
  }
}

Value *lir::foldUnary(Module &M, UnOp Op, Value *V) {
  switch (Op) {
  case UnOp::Neg:
    if (auto *C = dyn_cast<ConstInt>(V))
      return M.getConstInt(wrapSub(0, C->getValue()));
    return nullptr;
  case UnOp::FNeg:
    if (auto *C = dyn_cast<ConstFloat>(V))
      return M.getConstFloat(-C->getValue());
    return nullptr;
  case UnOp::Not:
    if (auto *C = dyn_cast<ConstBool>(V))
      return M.getConstBool(!C->getValue());
    return nullptr;
  case UnOp::BitNot:
    if (auto *C = dyn_cast<ConstInt>(V))
      return M.getConstInt(~C->getValue());
    return nullptr;
  }
  return nullptr;
}

Value *lir::foldCmp(Module &M, CmpPred Pred, Value *LHS, Value *RHS) {
  auto Decide = [&M, Pred](auto A, auto B) -> Value * {
    switch (Pred) {
    case CmpPred::EQ:
      return M.getConstBool(A == B);
    case CmpPred::NE:
      return M.getConstBool(A != B);
    case CmpPred::LT:
      return M.getConstBool(A < B);
    case CmpPred::LE:
      return M.getConstBool(A <= B);
    case CmpPred::GT:
      return M.getConstBool(A > B);
    case CmpPred::GE:
      return M.getConstBool(A >= B);
    }
    return nullptr;
  };
  if (auto *L = dyn_cast<ConstInt>(LHS))
    if (auto *R = dyn_cast<ConstInt>(RHS))
      return Decide(L->getValue(), R->getValue());
  if (auto *L = dyn_cast<ConstFloat>(LHS))
    if (auto *R = dyn_cast<ConstFloat>(RHS))
      return Decide(L->getValue(), R->getValue());
  if (auto *L = dyn_cast<ConstBool>(LHS))
    if (auto *R = dyn_cast<ConstBool>(RHS))
      return Decide(static_cast<int>(L->getValue()),
                    static_cast<int>(R->getValue()));
  return nullptr;
}

Value *lir::foldCast(Module &M, CastOp Op, Value *V) {
  switch (Op) {
  case CastOp::IntToFloat:
    if (auto *C = dyn_cast<ConstInt>(V))
      return M.getConstFloat(static_cast<double>(C->getValue()));
    return nullptr;
  case CastOp::FloatToInt:
    if (auto *C = dyn_cast<ConstFloat>(V)) {
      double D = C->getValue();
      // Only fold values that convert without undefined behaviour.
      if (!(D >= -9.2e18 && D <= 9.2e18))
        return nullptr;
      return M.getConstInt(static_cast<int64_t>(D));
    }
    return nullptr;
  case CastOp::BoolToInt:
    if (auto *C = dyn_cast<ConstBool>(V))
      return M.getConstInt(C->getValue() ? 1 : 0);
    return nullptr;
  }
  return nullptr;
}

Value *lir::foldCall(Module &M, Builtin B, const std::vector<Value *> &Args) {
  if (builtinArgType(B) == TypeKind::Int) {
    std::vector<int64_t> A;
    for (Value *V : Args) {
      auto *C = dyn_cast<ConstInt>(V);
      if (!C)
        return nullptr;
      A.push_back(C->getValue());
    }
    switch (B) {
    case Builtin::AbsI:
      return M.getConstInt(A[0] < 0 ? wrapSub(0, A[0]) : A[0]);
    case Builtin::MinI:
      return M.getConstInt(A[0] < A[1] ? A[0] : A[1]);
    case Builtin::MaxI:
      return M.getConstInt(A[0] > A[1] ? A[0] : A[1]);
    default:
      return nullptr;
    }
  }
  std::vector<double> A;
  for (Value *V : Args) {
    auto *C = dyn_cast<ConstFloat>(V);
    if (!C)
      return nullptr;
    A.push_back(C->getValue());
  }
  switch (B) {
  case Builtin::Sin:
    return M.getConstFloat(std::sin(A[0]));
  case Builtin::Cos:
    return M.getConstFloat(std::cos(A[0]));
  case Builtin::Tan:
    return M.getConstFloat(std::tan(A[0]));
  case Builtin::Atan:
    return M.getConstFloat(std::atan(A[0]));
  case Builtin::Atan2:
    return M.getConstFloat(std::atan2(A[0], A[1]));
  case Builtin::Exp:
    return M.getConstFloat(std::exp(A[0]));
  case Builtin::Log:
    return A[0] > 0 ? M.getConstFloat(std::log(A[0])) : nullptr;
  case Builtin::Sqrt:
    return A[0] >= 0 ? M.getConstFloat(std::sqrt(A[0])) : nullptr;
  case Builtin::Fabs:
    return M.getConstFloat(std::fabs(A[0]));
  case Builtin::Floor:
    return M.getConstFloat(std::floor(A[0]));
  case Builtin::Ceil:
    return M.getConstFloat(std::ceil(A[0]));
  case Builtin::Pow:
    return M.getConstFloat(std::pow(A[0], A[1]));
  case Builtin::Fmod:
    return A[1] != 0 ? M.getConstFloat(std::fmod(A[0], A[1])) : nullptr;
  case Builtin::MinF:
    return M.getConstFloat(A[0] < A[1] ? A[0] : A[1]);
  case Builtin::MaxF:
    return M.getConstFloat(A[0] > A[1] ? A[0] : A[1]);
  default:
    return nullptr;
  }
}

Value *lir::foldSelect(Value *Cond, Value *TrueV, Value *FalseV) {
  if (auto *C = dyn_cast<ConstBool>(Cond))
    return C->getValue() ? TrueV : FalseV;
  if (TrueV == FalseV)
    return TrueV;
  return nullptr;
}

Instruction *IRBuilder::insert(std::unique_ptr<Instruction> I) {
  assert(BB && "no insertion point set");
  I->setLoc(CurLoc);
  return BB->append(std::move(I));
}

Value *IRBuilder::createBinary(BinOp Op, Value *LHS, Value *RHS) {
  if (FoldConstants)
    if (Value *C = foldBinary(M, Op, LHS, RHS)) {
      ++NumConstFolds;
      return C;
    }
  return insert(std::make_unique<BinaryInst>(Op, LHS, RHS));
}

Value *IRBuilder::createUnary(UnOp Op, Value *V) {
  if (FoldConstants)
    if (Value *C = foldUnary(M, Op, V)) {
      ++NumConstFolds;
      return C;
    }
  return insert(std::make_unique<UnaryInst>(Op, V));
}

Value *IRBuilder::createCmp(CmpPred Pred, Value *LHS, Value *RHS) {
  if (FoldConstants)
    if (Value *C = foldCmp(M, Pred, LHS, RHS)) {
      ++NumConstFolds;
      return C;
    }
  return insert(std::make_unique<CmpInst>(Pred, LHS, RHS));
}

Value *IRBuilder::createCast(CastOp Op, Value *V) {
  if (FoldConstants)
    if (Value *C = foldCast(M, Op, V)) {
      ++NumConstFolds;
      return C;
    }
  return insert(std::make_unique<CastInst>(Op, V));
}

Value *IRBuilder::createSelect(Value *Cond, Value *TrueV, Value *FalseV) {
  if (FoldConstants)
    if (Value *C = foldSelect(Cond, TrueV, FalseV)) {
      ++NumConstFolds;
      return C;
    }
  return insert(std::make_unique<SelectInst>(Cond, TrueV, FalseV));
}

Value *IRBuilder::createCall(Builtin B, const std::vector<Value *> &Args) {
  if (FoldConstants)
    if (Value *C = foldCall(M, B, Args)) {
      ++NumConstFolds;
      return C;
    }
  return insert(std::make_unique<CallInst>(B, Args));
}

Value *IRBuilder::createInput(TypeKind Ty) {
  return insert(std::make_unique<InputInst>(Ty));
}

void IRBuilder::createOutput(Value *V) {
  insert(std::make_unique<OutputInst>(V));
}

Value *IRBuilder::createLoad(GlobalVar *G, Value *Index) {
  return insert(std::make_unique<LoadInst>(G, Index));
}

void IRBuilder::createStore(GlobalVar *G, Value *Index, Value *V) {
  insert(std::make_unique<StoreInst>(G, Index, V));
}

PhiInst *IRBuilder::createPhi(TypeKind Ty, BasicBlock *Block) {
  // Keep all phis grouped at the start of the block.
  size_t Pos = 0;
  const auto &Insts = Block->instructions();
  while (Pos < Insts.size() && isa<PhiInst>(Insts[Pos].get()))
    ++Pos;
  auto Phi = std::make_unique<PhiInst>(Ty);
  return cast<PhiInst>(Block->insertAt(Pos, std::move(Phi)));
}

void IRBuilder::createBr(BasicBlock *Target) {
  insert(std::make_unique<BrInst>(Target));
  Target->addPredecessor(BB);
}

void IRBuilder::createCondBr(Value *Cond, BasicBlock *TrueBB,
                             BasicBlock *FalseBB) {
  assert(TrueBB != FalseBB && "conditional branch with equal targets");
  if (FoldConstants) {
    if (auto *C = dyn_cast<ConstBool>(Cond)) {
      ++NumConstFolds;
      createBr(C->getValue() ? TrueBB : FalseBB);
      return;
    }
  }
  insert(std::make_unique<CondBrInst>(Cond, TrueBB, FalseBB));
  TrueBB->addPredecessor(BB);
  FalseBB->addPredecessor(BB);
}

void IRBuilder::createRet() { insert(std::make_unique<RetInst>()); }

Value *IRBuilder::convert(Value *V, TypeKind Ty) {
  TypeKind From = V->getType();
  if (From == Ty)
    return V;
  if (From == TypeKind::Int && Ty == TypeKind::Float)
    return createCast(CastOp::IntToFloat, V);
  if (From == TypeKind::Float && Ty == TypeKind::Int)
    return createCast(CastOp::FloatToInt, V);
  if (From == TypeKind::Bool && Ty == TypeKind::Int)
    return createCast(CastOp::BoolToInt, V);
  if (From == TypeKind::Bool && Ty == TypeKind::Float)
    return createCast(CastOp::IntToFloat, createCast(CastOp::BoolToInt, V));
  if (From == TypeKind::Int && Ty == TypeKind::Bool)
    return createCmp(CmpPred::NE, V, getInt(0));
  assert(false && "unsupported conversion");
  return V;
}
