//===--- BasicBlock.h - Straight-line instruction sequences ----*- C++ -*-===//

#ifndef LAMINAR_LIR_BASICBLOCK_H
#define LAMINAR_LIR_BASICBLOCK_H

#include "lir/Instruction.h"
#include <memory>
#include <string>
#include <vector>

namespace laminar {
namespace lir {

class Function;

/// A basic block: a list of instructions ending in exactly one
/// terminator. Predecessor lists are maintained by the IRBuilder when
/// terminators are created and by CFG-mutating passes.
class BasicBlock {
public:
  BasicBlock(std::string Name, Function *Parent)
      : Name(std::move(Name)), Parent(Parent) {}

  const std::string &getName() const { return Name; }
  Function *getParent() const { return Parent; }

  const std::vector<std::unique_ptr<Instruction>> &instructions() const {
    return Insts;
  }

  bool empty() const { return Insts.empty(); }
  size_t size() const { return Insts.size(); }
  Instruction *front() const { return Insts.front().get(); }
  Instruction *back() const { return Insts.back().get(); }

  /// Appends \p I (taking ownership) and returns the raw pointer.
  Instruction *append(std::unique_ptr<Instruction> I);

  /// Inserts \p I at position \p Idx (phis are inserted at the front by
  /// the SSA builder).
  Instruction *insertAt(size_t Idx, std::unique_ptr<Instruction> I);

  /// Removes (and destroys) the instruction at position \p Idx.
  void eraseAt(size_t Idx);

  /// Removes the instruction at position \p Idx and returns ownership
  /// (used when splicing blocks together).
  std::unique_ptr<Instruction> takeAt(size_t Idx);

  /// Removes all instructions for which \p Dead is set, in one sweep.
  void eraseMarked(const std::vector<bool> &Dead);

  /// Last instruction if it is a terminator, otherwise null.
  Instruction *terminator() const;

  bool hasTerminator() const { return terminator() != nullptr; }

  /// Successor blocks derived from the terminator (0, 1 or 2 entries).
  std::vector<BasicBlock *> successors() const;

  const std::vector<BasicBlock *> &predecessors() const { return Preds; }
  void addPredecessor(BasicBlock *BB) { Preds.push_back(BB); }
  void removePredecessor(BasicBlock *BB);
  void clearPredecessors() { Preds.clear(); }

private:
  std::string Name;
  Function *Parent;
  std::vector<std::unique_ptr<Instruction>> Insts;
  std::vector<BasicBlock *> Preds;
};

} // namespace lir
} // namespace laminar

#endif // LAMINAR_LIR_BASICBLOCK_H
