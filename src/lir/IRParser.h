//===--- IRParser.h - Textual LaminarIR parsing ----------------*- C++ -*-===//
//
// Parses the format produced by Printer.h back into a Module, enabling
// round-trip tests and hand-written IR test cases for the optimizer.
//
//===----------------------------------------------------------------------===//

#ifndef LAMINAR_LIR_IRPARSER_H
#define LAMINAR_LIR_IRPARSER_H

#include "lir/Module.h"
#include "support/Diagnostics.h"
#include <memory>
#include <string>

namespace laminar {
namespace lir {

/// Parses textual LaminarIR. Returns null and fills \p Diags on error.
/// The result verifies iff the input described a valid module.
std::unique_ptr<Module> parseIR(const std::string &Text,
                                DiagnosticEngine &Diags);

} // namespace lir
} // namespace laminar

#endif // LAMINAR_LIR_IRPARSER_H
