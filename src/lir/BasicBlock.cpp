//===--- BasicBlock.cpp ---------------------------------------------------===//

#include "lir/BasicBlock.h"
#include <algorithm>
#include <cassert>

using namespace laminar;
using namespace laminar::lir;

Instruction *BasicBlock::append(std::unique_ptr<Instruction> I) {
  assert(!hasTerminator() && "appending past a terminator");
  I->setParent(this);
  Insts.push_back(std::move(I));
  return Insts.back().get();
}

Instruction *BasicBlock::insertAt(size_t Idx, std::unique_ptr<Instruction> I) {
  assert(Idx <= Insts.size() && "insert position out of range");
  I->setParent(this);
  auto It = Insts.insert(Insts.begin() + Idx, std::move(I));
  return It->get();
}

void BasicBlock::eraseAt(size_t Idx) {
  assert(Idx < Insts.size() && "erase position out of range");
  Insts.erase(Insts.begin() + Idx);
}

std::unique_ptr<Instruction> BasicBlock::takeAt(size_t Idx) {
  assert(Idx < Insts.size() && "take position out of range");
  std::unique_ptr<Instruction> I = std::move(Insts[Idx]);
  Insts.erase(Insts.begin() + Idx);
  return I;
}

void BasicBlock::eraseMarked(const std::vector<bool> &Dead) {
  assert(Dead.size() == Insts.size() && "mark vector size mismatch");
  size_t Out = 0;
  for (size_t I = 0, E = Insts.size(); I != E; ++I) {
    if (Dead[I])
      continue;
    if (Out != I)
      Insts[Out] = std::move(Insts[I]);
    ++Out;
  }
  Insts.resize(Out);
}

Instruction *BasicBlock::terminator() const {
  if (Insts.empty())
    return nullptr;
  Instruction *Last = Insts.back().get();
  return Last->isTerminator() ? Last : nullptr;
}

std::vector<BasicBlock *> BasicBlock::successors() const {
  Instruction *T = terminator();
  if (!T)
    return {};
  if (auto *Br = dyn_cast<BrInst>(T))
    return {Br->getTarget()};
  if (auto *CBr = dyn_cast<CondBrInst>(T))
    return {CBr->getTrueBlock(), CBr->getFalseBlock()};
  return {};
}

void BasicBlock::removePredecessor(BasicBlock *BB) {
  auto It = std::find(Preds.begin(), Preds.end(), BB);
  assert(It != Preds.end() && "removing a predecessor that is not listed");
  Preds.erase(It);
}
