//===--- Instruction.h - LaminarIR instruction set -------------*- C++ -*-===//

#ifndef LAMINAR_LIR_INSTRUCTION_H
#define LAMINAR_LIR_INSTRUCTION_H

#include "lir/Value.h"
#include "support/Casting.h"
#include "support/SourceLoc.h"
#include <cassert>
#include <string>

namespace laminar {
namespace lir {

class BasicBlock;
class GlobalVar;

/// Common base of all instructions: an SSA value with operands and a
/// parent basic block. Operand mutation maintains the operands' user
/// lists.
class Instruction : public Value {
public:
  ~Instruction() override { dropOperands(); }

  BasicBlock *getParent() const { return Parent; }
  void setParent(BasicBlock *BB) { Parent = BB; }

  unsigned getNumOperands() const { return Ops.size(); }
  Value *getOperand(unsigned I) const {
    assert(I < Ops.size() && "operand index out of range");
    return Ops[I];
  }
  void setOperand(unsigned I, Value *V);

  /// Removes operand \p I (shifting later operands down) and updates the
  /// old operand's user list. Used by phi incoming removal.
  void removeOperand(unsigned I);

  /// Detaches this instruction from all operand user lists. Called before
  /// erasing an instruction so that dangling users never exist.
  void dropOperands();

  bool isTerminator() const {
    Kind K = getKind();
    return K == Kind::Br || K == Kind::CondBr || K == Kind::Ret;
  }

  /// True if removing the instruction is observable (stores, output,
  /// input consumption, control flow).
  bool hasSideEffects() const {
    Kind K = getKind();
    return K == Kind::Store || K == Kind::Output || K == Kind::Input ||
           isTerminator();
  }

  /// Dense per-function slot assigned by Function::numberValues; the
  /// interpreter indexes its register file with it.
  uint32_t getSlot() const { return Slot; }
  void setSlot(uint32_t S) { Slot = S; }

  /// Surface-program location this instruction was lowered from; invalid
  /// ({0,0}) for synthesized plumbing (queue rotation, loop scaffolding).
  /// The analyses use it to attach diagnostics to source.
  SourceLoc getLoc() const { return Loc; }
  void setLoc(SourceLoc L) { Loc = L; }

  static bool classof(const Value *V) {
    return V->getKind() > Kind::InstBegin && V->getKind() < Kind::InstEnd;
  }

protected:
  Instruction(Kind K, TypeKind Ty) : Value(K, Ty) {}

  void addOperand(Value *V);

private:
  BasicBlock *Parent = nullptr;
  std::vector<Value *> Ops;
  uint32_t Slot = 0;
  SourceLoc Loc;
};

/// Binary arithmetic and bitwise operators. Integer and float variants
/// are distinct opcodes (as in LLVM) so passes need not inspect types.
enum class BinOp {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  And,
  Or,
  Xor,
  Shl,
  Shr,
  FAdd,
  FSub,
  FMul,
  FDiv,
};

/// Printable mnemonic, e.g. "add" or "fmul".
const char *binOpName(BinOp Op);

/// True for the four floating-point opcodes.
bool isFloatBinOp(BinOp Op);

class BinaryInst : public Instruction {
public:
  BinaryInst(BinOp Op, Value *LHS, Value *RHS)
      : Instruction(Kind::Binary,
                    isFloatBinOp(Op) ? TypeKind::Float : TypeKind::Int),
        Op(Op) {
    addOperand(LHS);
    addOperand(RHS);
  }

  BinOp getOp() const { return Op; }
  Value *getLHS() const { return getOperand(0); }
  Value *getRHS() const { return getOperand(1); }

  /// True if the operation is commutative (used by GVN canonicalization).
  bool isCommutative() const {
    switch (Op) {
    case BinOp::Add:
    case BinOp::Mul:
    case BinOp::And:
    case BinOp::Or:
    case BinOp::Xor:
    case BinOp::FAdd:
    case BinOp::FMul:
      return true;
    default:
      return false;
    }
  }

  static bool classof(const Value *V) { return V->getKind() == Kind::Binary; }

private:
  BinOp Op;
};

enum class UnOp { Neg, FNeg, Not, BitNot };

const char *unOpName(UnOp Op);

class UnaryInst : public Instruction {
public:
  UnaryInst(UnOp Op, Value *V)
      : Instruction(Kind::Unary, Op == UnOp::FNeg  ? TypeKind::Float
                                 : Op == UnOp::Not ? TypeKind::Bool
                                                   : TypeKind::Int),
        Op(Op) {
    addOperand(V);
  }

  UnOp getOp() const { return Op; }

  static bool classof(const Value *V) { return V->getKind() == Kind::Unary; }

private:
  UnOp Op;
};

/// Comparison predicates. Whether the comparison is integer or float is
/// determined by the operand types.
enum class CmpPred { EQ, NE, LT, LE, GT, GE };

const char *cmpPredName(CmpPred P);

class CmpInst : public Instruction {
public:
  CmpInst(CmpPred Pred, Value *LHS, Value *RHS)
      : Instruction(Kind::Cmp, TypeKind::Bool), Pred(Pred) {
    addOperand(LHS);
    addOperand(RHS);
  }

  CmpPred getPred() const { return Pred; }
  Value *getLHS() const { return getOperand(0); }
  Value *getRHS() const { return getOperand(1); }
  bool isFloatCmp() const {
    return getOperand(0)->getType() == TypeKind::Float;
  }

  static bool classof(const Value *V) { return V->getKind() == Kind::Cmp; }

private:
  CmpPred Pred;
};

enum class CastOp { IntToFloat, FloatToInt, BoolToInt };

const char *castOpName(CastOp Op);

class CastInst : public Instruction {
public:
  CastInst(CastOp Op, Value *V)
      : Instruction(Kind::Cast, Op == CastOp::IntToFloat ? TypeKind::Float
                                                         : TypeKind::Int),
        Op(Op) {
    addOperand(V);
  }

  CastOp getOp() const { return Op; }

  static bool classof(const Value *V) { return V->getKind() == Kind::Cast; }

private:
  CastOp Op;
};

class SelectInst : public Instruction {
public:
  SelectInst(Value *Cond, Value *TrueV, Value *FalseV)
      : Instruction(Kind::Select, TrueV->getType()) {
    addOperand(Cond);
    addOperand(TrueV);
    addOperand(FalseV);
  }

  Value *getCond() const { return getOperand(0); }
  Value *getTrueValue() const { return getOperand(1); }
  Value *getFalseValue() const { return getOperand(2); }

  static bool classof(const Value *V) { return V->getKind() == Kind::Select; }
};

/// Math builtins (libm in the generated C; <cmath> in the interpreter).
enum class Builtin {
  Sin,
  Cos,
  Tan,
  Atan,
  Atan2,
  Exp,
  Log,
  Sqrt,
  Fabs,
  Floor,
  Ceil,
  Pow,
  Fmod,
  AbsI,
  MinI,
  MaxI,
  MinF,
  MaxF,
};

const char *builtinName(Builtin B);
unsigned builtinArity(Builtin B);
TypeKind builtinResultType(Builtin B);
TypeKind builtinArgType(Builtin B);

class CallInst : public Instruction {
public:
  CallInst(Builtin B, const std::vector<Value *> &Args)
      : Instruction(Kind::Call, builtinResultType(B)), B(B) {
    assert(Args.size() == builtinArity(B) && "builtin arity mismatch");
    for (Value *A : Args)
      addOperand(A);
  }

  Builtin getBuiltin() const { return B; }

  static bool classof(const Value *V) { return V->getKind() == Kind::Call; }

private:
  Builtin B;
};

/// Reads the next token from the program's external input stream.
class InputInst : public Instruction {
public:
  explicit InputInst(TypeKind Ty) : Instruction(Kind::Input, Ty) {
    assert(isTokenType(Ty) && "input must be a token type");
  }

  static bool classof(const Value *V) { return V->getKind() == Kind::Input; }
};

/// Appends a token to the program's external output stream.
class OutputInst : public Instruction {
public:
  explicit OutputInst(Value *V) : Instruction(Kind::Output, TypeKind::Void) {
    addOperand(V);
  }

  Value *getValue() const { return getOperand(0); }

  static bool classof(const Value *V) { return V->getKind() == Kind::Output; }
};

/// Reads Global[Index]. Scalars are arrays of size one indexed by 0.
class LoadInst : public Instruction {
public:
  LoadInst(GlobalVar *G, Value *Index);

  GlobalVar *getGlobal() const { return Global; }
  Value *getIndex() const { return getOperand(0); }

  static bool classof(const Value *V) { return V->getKind() == Kind::Load; }

private:
  GlobalVar *Global;
};

/// Writes Global[Index] = Value.
class StoreInst : public Instruction {
public:
  StoreInst(GlobalVar *G, Value *Index, Value *V);

  GlobalVar *getGlobal() const { return Global; }
  Value *getIndex() const { return getOperand(0); }
  Value *getValue() const { return getOperand(1); }

  static bool classof(const Value *V) { return V->getKind() == Kind::Store; }

private:
  GlobalVar *Global;
};

class PhiInst : public Instruction {
public:
  explicit PhiInst(TypeKind Ty) : Instruction(Kind::Phi, Ty) {}

  void addIncoming(Value *V, BasicBlock *BB) {
    addOperand(V);
    Blocks.push_back(BB);
  }

  unsigned getNumIncoming() const { return getNumOperands(); }
  Value *getIncomingValue(unsigned I) const { return getOperand(I); }
  BasicBlock *getIncomingBlock(unsigned I) const { return Blocks[I]; }
  void setIncomingBlock(unsigned I, BasicBlock *BB) { Blocks[I] = BB; }

  /// Incoming value for predecessor \p BB; null if \p BB is not listed.
  Value *getIncomingForBlock(const BasicBlock *BB) const;

  /// Removes the incoming entry at position \p I.
  void removeIncoming(unsigned I) {
    removeOperand(I);
    Blocks.erase(Blocks.begin() + I);
  }

  /// Removes the incoming entry for \p BB if present.
  void removeIncomingForBlock(const BasicBlock *BB);

  /// Refines the type of a phi created before its operands were known.
  void refineType(TypeKind Ty) { setType(Ty); }

  static bool classof(const Value *V) { return V->getKind() == Kind::Phi; }

private:
  std::vector<BasicBlock *> Blocks;
};

class BrInst : public Instruction {
public:
  explicit BrInst(BasicBlock *Target)
      : Instruction(Kind::Br, TypeKind::Void), Target(Target) {}

  BasicBlock *getTarget() const { return Target; }
  void setTarget(BasicBlock *BB) { Target = BB; }

  static bool classof(const Value *V) { return V->getKind() == Kind::Br; }

private:
  BasicBlock *Target;
};

class CondBrInst : public Instruction {
public:
  CondBrInst(Value *Cond, BasicBlock *TrueBB, BasicBlock *FalseBB)
      : Instruction(Kind::CondBr, TypeKind::Void), TrueBB(TrueBB),
        FalseBB(FalseBB) {
    addOperand(Cond);
  }

  Value *getCond() const { return getOperand(0); }
  BasicBlock *getTrueBlock() const { return TrueBB; }
  BasicBlock *getFalseBlock() const { return FalseBB; }
  void setTrueBlock(BasicBlock *BB) { TrueBB = BB; }
  void setFalseBlock(BasicBlock *BB) { FalseBB = BB; }

  static bool classof(const Value *V) { return V->getKind() == Kind::CondBr; }

private:
  BasicBlock *TrueBB;
  BasicBlock *FalseBB;
};

class RetInst : public Instruction {
public:
  RetInst() : Instruction(Kind::Ret, TypeKind::Void) {}

  static bool classof(const Value *V) { return V->getKind() == Kind::Ret; }
};

} // namespace lir
} // namespace laminar

#endif // LAMINAR_LIR_INSTRUCTION_H
