//===--- Value.cpp --------------------------------------------------------===//

#include "lir/Value.h"
#include "lir/Instruction.h"
#include <algorithm>
#include <cassert>

using namespace laminar;
using namespace laminar::lir;

void Value::removeUser(Instruction *I) {
  auto It = std::find(Users.begin(), Users.end(), I);
  assert(It != Users.end() && "removing a user that was never added");
  // Order does not matter; swap-with-back for O(1) removal.
  *It = Users.back();
  Users.pop_back();
}

void Value::replaceAllUsesWith(Value *New) {
  assert(New != this && "replacing a value with itself");
  // setOperand mutates the Users vector, so iterate over a snapshot.
  std::vector<Instruction *> Snapshot = Users;
  for (Instruction *User : Snapshot)
    for (unsigned I = 0, E = User->getNumOperands(); I != E; ++I)
      if (User->getOperand(I) == this)
        User->setOperand(I, New);
  assert(Users.empty() && "stale users after replaceAllUsesWith");
}
