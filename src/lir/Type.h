//===--- Type.h - LaminarIR value types ------------------------*- C++ -*-===//
//
// LaminarIR is a small typed IR: 64-bit integers, double-precision floats,
// booleans (comparison results) and void (instructions executed for their
// effect). Stream token types are Int or Float.
//
//===----------------------------------------------------------------------===//

#ifndef LAMINAR_LIR_TYPE_H
#define LAMINAR_LIR_TYPE_H

namespace laminar {
namespace lir {

enum class TypeKind { Void, Bool, Int, Float };

/// Printable name of a type ("void", "bool", "int", "float").
const char *typeName(TypeKind Ty);

/// True for the two token-carrying types.
inline bool isTokenType(TypeKind Ty) {
  return Ty == TypeKind::Int || Ty == TypeKind::Float;
}

} // namespace lir
} // namespace laminar

#endif // LAMINAR_LIR_TYPE_H
