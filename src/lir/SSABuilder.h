//===--- SSABuilder.h - On-the-fly SSA construction ------------*- C++ -*-===//
//
// Implements the algorithm of Braun et al. (CC 2013): local value
// numbering with lazy phi placement and trivial-phi elimination. The
// lowerings translate the structured work-function ASTs directly into
// pruned SSA without a separate mem2reg pass.
//
//===----------------------------------------------------------------------===//

#ifndef LAMINAR_LIR_SSABUILDER_H
#define LAMINAR_LIR_SSABUILDER_H

#include "lir/IRBuilder.h"
#include <unordered_map>
#include <unordered_set>

namespace laminar {
namespace lir {

class SSABuilder {
public:
  /// Variables are identified by an opaque key (the lowering uses AST
  /// declaration pointers, made unique per filter firing when unrolling).
  using VarKey = const void *;

  explicit SSABuilder(IRBuilder &Builder) : Builder(Builder) {}

  /// Records that \p Var holds \p V at the end of \p BB.
  void writeVariable(VarKey Var, BasicBlock *BB, Value *V);

  /// Current value of \p Var at the end of \p BB, placing phis as needed.
  /// \p Ty is the variable's type (used when a phi must be created).
  Value *readVariable(VarKey Var, BasicBlock *BB, TypeKind Ty);

  /// Declares that no further predecessors will be added to \p BB;
  /// completes any pending phis.
  void sealBlock(BasicBlock *BB);

  bool isSealed(const BasicBlock *BB) const { return Sealed.count(BB) != 0; }

private:
  Value *readVariableRecursive(VarKey Var, BasicBlock *BB, TypeKind Ty);
  Value *addPhiOperands(VarKey Var, PhiInst *Phi, TypeKind Ty);
  Value *tryRemoveTrivialPhi(PhiInst *Phi);
  Value *resolve(Value *V) const;

  IRBuilder &Builder;
  std::unordered_map<VarKey, std::unordered_map<BasicBlock *, Value *>>
      CurrentDef;
  std::unordered_set<const BasicBlock *> Sealed;
  std::unordered_map<BasicBlock *, std::vector<std::pair<VarKey, PhiInst *>>>
      IncompletePhis;
  /// Trivial phis that have been replaced; stale CurrentDef entries are
  /// resolved through this map.
  std::unordered_map<const Value *, Value *> Forwarded;
};

} // namespace lir
} // namespace laminar

#endif // LAMINAR_LIR_SSABUILDER_H
