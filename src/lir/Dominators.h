//===--- Dominators.h - Dominator tree computation -------------*- C++ -*-===//
//
// Iterative dominator computation (Cooper/Harvey/Kennedy). Used by the
// verifier for def-dominates-use checks and by GVN for its scoped table.
//
//===----------------------------------------------------------------------===//

#ifndef LAMINAR_LIR_DOMINATORS_H
#define LAMINAR_LIR_DOMINATORS_H

#include "lir/Function.h"
#include <unordered_map>
#include <vector>

namespace laminar {
namespace lir {

class DomTree {
public:
  /// Builds the dominator tree of all blocks reachable from the entry.
  explicit DomTree(const Function &F);

  /// True when \p A dominates \p B (reflexively).
  bool dominates(const BasicBlock *A, const BasicBlock *B) const;

  /// Immediate dominator; null for the entry block and unreachable
  /// blocks.
  const BasicBlock *idom(const BasicBlock *BB) const;

  bool isReachable(const BasicBlock *BB) const {
    return Index.count(BB) != 0;
  }

  /// Blocks in reverse postorder (entry first); unreachable blocks are
  /// not included.
  const std::vector<BasicBlock *> &reversePostorder() const { return RPO; }

  /// Children in the dominator tree (reachable blocks only).
  std::vector<BasicBlock *> childrenOf(const BasicBlock *BB) const;

private:
  std::vector<BasicBlock *> RPO;
  std::unordered_map<const BasicBlock *, unsigned> Index; // RPO index
  std::vector<unsigned> IDom; // by RPO index; entry maps to itself
};

} // namespace lir
} // namespace laminar

#endif // LAMINAR_LIR_DOMINATORS_H
