//===--- Verifier.h - IR well-formedness checks ----------------*- C++ -*-===//

#ifndef LAMINAR_LIR_VERIFIER_H
#define LAMINAR_LIR_VERIFIER_H

#include "lir/Module.h"
#include <string>
#include <vector>

namespace laminar {
namespace lir {

/// Checks structural and SSA invariants of a module:
///  - every reachable block ends with exactly one terminator;
///  - predecessor lists agree with terminator successors;
///  - phis have one incoming entry per predecessor;
///  - definitions dominate uses;
///  - operand types are consistent with the instruction.
/// With BoundsCheckConstIndices, additionally rejects constant
/// load/store indices outside the global's declared size. That is an
/// invariant of freshly *lowered* IR only: every lowering either
/// proves the index or rejects the program. Optimization may later
/// fold a dynamic index into an out-of-bounds constant for a program
/// whose out-of-bounds access is a legitimate run-time trap, so
/// post-optimization verification must leave it off.
/// Returns the list of violations (empty when the module verifies).
std::vector<std::string> verifyModule(const Module &M,
                                      bool BoundsCheckConstIndices = false);

/// Convenience: true when verifyModule reports nothing.
bool verify(const Module &M);

} // namespace lir
} // namespace laminar

#endif // LAMINAR_LIR_VERIFIER_H
