//===--- Verifier.h - IR well-formedness checks ----------------*- C++ -*-===//

#ifndef LAMINAR_LIR_VERIFIER_H
#define LAMINAR_LIR_VERIFIER_H

#include "lir/Module.h"
#include <string>
#include <vector>

namespace laminar {
namespace lir {

/// Checks structural and SSA invariants of a module:
///  - every reachable block ends with exactly one terminator;
///  - predecessor lists agree with terminator successors;
///  - phis have one incoming entry per predecessor;
///  - definitions dominate uses;
///  - operand types are consistent with the instruction.
/// Returns the list of violations (empty when the module verifies).
std::vector<std::string> verifyModule(const Module &M);

/// Convenience: true when verifyModule reports nothing.
bool verify(const Module &M);

} // namespace lir
} // namespace laminar

#endif // LAMINAR_LIR_VERIFIER_H
