//===--- AnalysisOracle.h - No-false-positive analysis oracle --*- C++ -*-===//
//
// The static checks promise two things the fuzzer can hold them to:
// the analyzer never crashes or rejects a program without a located
// diagnostic, and every claim it *proves* (an error, not a warning)
// about unconditionally executed code is true on a concrete trace.
// The second half is the interesting one — an abstract interpreter
// with a transfer-function bug tends to prove facts that a real
// execution immediately contradicts, and the interpreter is the
// independent judge: a proved out-of-bounds access or division by
// zero in an entry block must trap when the module actually runs.
//
//===----------------------------------------------------------------------===//

#ifndef LAMINAR_TESTING_ANALYSISORACLE_H
#define LAMINAR_TESTING_ANALYSISORACLE_H

#include <string>

namespace laminar {
namespace testing {

struct AnalysisCheckResult {
  /// The oracle broke: the analyzer rejected without a located error,
  /// the compiler failed in the backend, or a proved claim was
  /// contradicted by a clean concrete execution (false positive).
  bool Violation = false;
  std::string Detail;
  /// The program compiled (possibly with analysis warnings).
  bool Accepted = false;
  /// Proved entry-block OOB / div-by-zero claims the interpreter can
  /// be asked to confirm, and whether a concrete run confirmed them.
  unsigned ProvedClaims = 0;
  bool Confirmed = false;
};

/// Compiles \p Source under fifo-O0 with the analysis checks enabled
/// and crash-oracle limits, then cross-examines any proved claims
/// against the interpreter. Never throws; memory errors are the
/// sanitizers' half of the bargain.
AnalysisCheckResult checkAnalysisOracle(const std::string &Source,
                                        const std::string &Top);

} // namespace testing
} // namespace laminar

#endif // LAMINAR_TESTING_ANALYSISORACLE_H
