//===--- ProgramGen.h - Random stream-program generation -------*- C++ -*-===//
//
// Seedable generator of rate-consistent StreamIt-subset programs for
// differential testing. Programs are produced as a structured spec (so
// the test-case reducer can shrink them piecewise) and rendered to .str
// source on demand. Covers pipelines, heterogeneous and homogeneous
// splitjoins (duplicate and roundrobin), peeking filters, int/float
// types with mid-pipeline casts, filters with init/state, and feedback
// loops. Every generated program compiles and schedules by
// construction: splitjoin weights are derived from the branch rates so
// the balance equations always hold, and feedback stages instantiate
// deadlock-free templates.
//
//===----------------------------------------------------------------------===//

#ifndef LAMINAR_TESTING_PROGRAMGEN_H
#define LAMINAR_TESTING_PROGRAMGEN_H

#include <cstdint>
#include <string>
#include <vector>

namespace laminar {
namespace testing {

enum class Ty { Int, Float };

const char *tyName(Ty T);

/// One generated filter. The work body is derived deterministically
/// from (rates, flavor, BodySeed), so a spec renders to identical
/// source no matter how it was reached (generation or reduction).
struct FilterSpec {
  Ty In = Ty::Float;
  Ty Out = Ty::Float;
  int Push = 1;
  int Pop = 1;
  int Peek = 1; ///< >= Pop; the margin carries live tokens.
  /// 0 = weighted peek sum, 1 = alternating sum with a branch,
  /// 2 = clamped sum (int) / math-call sum (float).
  int Flavor = 0;
  bool HasState = false; ///< persistent field updated per firing
  bool HasInit = false;  ///< init block priming the field
  uint64_t BodySeed = 0; ///< coefficient source
};

/// A splitjoin stage; all branches map Ty->Ty of the stage type.
/// Weights are derived at render time: duplicate joins on the branch
/// push rates; heterogeneous roundrobin splits on the branch pop rates
/// and joins on the push rates; homogeneous shapes use the single
/// explicit SplitWeight/JoinWeight. All three are balance-consistent
/// by construction.
struct SplitJoinSpec {
  bool Duplicate = false;
  bool Homogeneous = false;
  std::vector<FilterSpec> Branches; ///< size 1 when homogeneous
  int NumBranches = 2;              ///< used when homogeneous
  int SplitWeight = 1;              ///< homogeneous roundrobin only
  int JoinWeight = 1;               ///< homogeneous only
};

/// A feedback-loop stage (float->float). Two deadlock-free templates:
/// 0: join roundrobin(1,1); body pop 2 push 2 (y = x + decay*fb);
///    split roundrobin(1,1); optional unit-rate loop scaler;
///    Delay enqueued tokens.
/// 1: multi-rate — join roundrobin(1,2); body pop 3 push 2;
///    split roundrobin(1,1); loop pop 1 push 2 upsampler; 2 enqueues.
struct FeedbackSpec {
  int Template = 0;
  int Delay = 4; ///< template 0: number of enqueued tokens (>= 1)
  bool HasLoopScale = false; ///< template 0: scaler on the loop path
  uint64_t BodySeed = 0;     ///< decay/scale/enqueue constants
};

struct StageSpec {
  enum class Kind { Filter, SplitJoin, Feedback };
  Kind K = Kind::Filter;
  Ty In = Ty::Float; ///< stage input type; Filter may cast, others keep
  FilterSpec F;
  SplitJoinSpec SJ;
  FeedbackSpec FB;

  Ty outTy() const {
    return K == Kind::Filter ? F.Out : In;
  }
};

struct ProgramSpec {
  std::string Top = "FuzzTop";
  std::vector<StageSpec> Stages;

  Ty inTy() const { return Stages.front().In; }
  Ty outTy() const { return Stages.back().outTy(); }
};

struct GenOptions {
  int MinStages = 2;
  int MaxStages = 5;
  int MaxBranches = 4;
  int MaxRate = 3;       ///< push/pop rates drawn from [1, MaxRate]
  int MaxPeekMargin = 3; ///< peek - pop drawn from [0, MaxPeekMargin]
  bool AllowSplitJoin = true;
  bool AllowFeedback = true;
  bool AllowInt = true;
  bool AllowCasts = true;
  bool AllowState = true;
};

/// Generates a program spec from \p Seed. Deterministic: equal seeds
/// and options produce equal specs.
ProgramSpec generateProgram(uint64_t Seed, const GenOptions &O = {});

/// Renders the spec as StreamIt-subset source text.
std::string renderSource(const ProgramSpec &P);

/// One-line structural summary ("stages=4 sj=1 fb=0 int=yes"), used in
/// fuzzing reports.
std::string describe(const ProgramSpec &P);

} // namespace testing
} // namespace laminar

#endif // LAMINAR_TESTING_PROGRAMGEN_H
