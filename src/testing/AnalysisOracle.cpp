//===--- AnalysisOracle.cpp -----------------------------------------------===//

#include "testing/AnalysisOracle.h"
#include "driver/Driver.h"
#include "testing/Mutator.h"
#include <sstream>
#include <vector>

using namespace laminar;
using namespace laminar::testing;

namespace {

/// Claims the interpreter can adjudicate: it traps on out-of-bounds
/// state access and on integer division faults. Peek-window and
/// pop-rate claims are about declared rates, which FIFO execution
/// papers over with a masked ring buffer, so they stay out of scope.
bool confirmable(analysis::CheckKind K) {
  return K == analysis::CheckKind::OobIndex ||
         K == analysis::CheckKind::DivByZero;
}

/// The interpreter message the claim predicts.
const char *expectedTrap(analysis::CheckKind K) {
  return K == analysis::CheckKind::DivByZero ? "division"
                                             : "out of bounds";
}

} // namespace

AnalysisCheckResult testing::checkAnalysisOracle(const std::string &Source,
                                                 const std::string &Top) {
  AnalysisCheckResult Result;

  driver::CompileOptions Opts;
  Opts.TopName = Top;
  Opts.Mode = driver::LoweringMode::Fifo;
  Opts.OptLevel = 0;
  Opts.Limits = crashCheckLimits();
  Opts.Analyze = true;
  driver::Compilation C = driver::compile(Source, Opts);

  if (C.Ok) {
    Result.Accepted = true;
    return Result;
  }
  if (C.failedInBackend()) {
    std::ostringstream OS;
    OS << "compiler fault at stage '" << driver::compileStageName(C.Stage)
       << "' with the analysis checks enabled\n"
       << C.ErrorLog;
    Result.Violation = true;
    Result.Detail = OS.str();
    return Result;
  }
  if (!C.hasLocatedError()) {
    std::ostringstream OS;
    OS << "rejected at stage '" << driver::compileStageName(C.Stage)
       << "' without an error diagnostic carrying a source location\n"
       << C.ErrorLog;
    Result.Violation = true;
    Result.Detail = OS.str();
    return Result;
  }

  // Collect the claims strong enough to put before the judge: proved
  // (error-severity), about unconditionally executed code, and of a
  // kind the interpreter traps on.
  std::vector<const analysis::Finding *> Claims;
  for (const analysis::Finding &F : C.Analysis.Findings)
    if (F.Error && F.InEntryBlock && confirmable(F.Kind))
      Claims.push_back(&F);
  Result.ProvedClaims = static_cast<unsigned>(Claims.size());
  if (Claims.empty() || !C.Module)
    return Result;

  // The driver keeps the lowered module around on analysis rejection
  // exactly for this cross-examination.
  interp::TokenStream Input = interp::makeRandomInput(
      C.Module->getInputType(), driver::requiredInputTokens(C, 2), 0xC0FFEE);
  interp::RunResult R = interp::runModule(*C.Module, Input, 2,
                                          /*StepBudget=*/2'000'000ULL);
  if (R.Ok) {
    std::ostringstream OS;
    OS << "false positive: analysis proved "
       << analysis::checkKindName(Claims.front()->Kind) << " ("
       << Claims.front()->Message << ") in always-executed code, but a "
       << "concrete execution completed cleanly";
    Result.Violation = true;
    Result.Detail = OS.str();
    return Result;
  }
  for (const analysis::Finding *F : Claims)
    if (R.Error.find(expectedTrap(F->Kind)) != std::string::npos)
      Result.Confirmed = true;
  return Result;
}
