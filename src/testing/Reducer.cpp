//===--- Reducer.cpp ------------------------------------------------------===//

#include "testing/Reducer.h"
#include <algorithm>
#include <functional>

using namespace laminar;
using namespace laminar::testing;

namespace {

/// A candidate is a single reduction step applied to a copy of the
/// spec; it returns false when it does not apply (candidate skipped).
using Mutation = std::function<bool(ProgramSpec &)>;

/// Shrink steps for one filter (identified by a stage index and an
/// optional branch index). Applied through an accessor so the same
/// steps serve pipeline filters and splitjoin branches.
void filterMutations(std::vector<Mutation> &Out, size_t Stage, int Branch) {
  auto Access = [Stage, Branch](ProgramSpec &P) -> FilterSpec * {
    if (Stage >= P.Stages.size())
      return nullptr;
    StageSpec &St = P.Stages[Stage];
    if (Branch < 0)
      return St.K == StageSpec::Kind::Filter ? &St.F : nullptr;
    if (St.K != StageSpec::Kind::SplitJoin ||
        static_cast<size_t>(Branch) >= St.SJ.Branches.size())
      return nullptr;
    return &St.SJ.Branches[Branch];
  };
  Out.push_back([Access](ProgramSpec &P) {
    FilterSpec *F = Access(P);
    if (!F || F->Peek <= F->Pop)
      return false;
    F->Peek = F->Pop;
    return true;
  });
  Out.push_back([Access](ProgramSpec &P) {
    FilterSpec *F = Access(P);
    if (!F || F->Peek <= F->Pop)
      return false;
    --F->Peek;
    return true;
  });
  Out.push_back([Access](ProgramSpec &P) {
    FilterSpec *F = Access(P);
    if (!F || F->Push <= 1)
      return false;
    --F->Push;
    return true;
  });
  // Callers only use this for pipeline filters and non-duplicate
  // splitjoin branches; duplicate branches shrink their shared pop rate
  // through a whole-stage mutation instead.
  Out.push_back([Access](ProgramSpec &P) {
    FilterSpec *F = Access(P);
    if (!F || F->Pop <= 1)
      return false;
    --F->Pop;
    F->Peek = std::max(F->Peek - 1, F->Pop);
    return true;
  });
  Out.push_back([Access](ProgramSpec &P) {
    FilterSpec *F = Access(P);
    if (!F || (!F->HasState && !F->HasInit))
      return false;
    F->HasState = false;
    F->HasInit = false;
    return true;
  });
  Out.push_back([Access](ProgramSpec &P) {
    FilterSpec *F = Access(P);
    if (!F || F->Flavor == 0)
      return false;
    F->Flavor = 0;
    return true;
  });
}

/// Builds the ordered candidate list for the current spec. Most
/// aggressive first: structural deletions, then structural
/// replacements, then local shrinks.
std::vector<Mutation> buildMutations(const ProgramSpec &P) {
  std::vector<Mutation> Out;

  // 1. Drop whole stages. The first and last can always go — the
  //    pipeline's declared I/O types follow the remaining chain —
  //    while interior stages must be type-preserving to keep the
  //    chain connected.
  if (P.Stages.size() >= 2) {
    Out.push_back([](ProgramSpec &Q) {
      if (Q.Stages.size() < 2)
        return false;
      Q.Stages.erase(Q.Stages.begin());
      return true;
    });
    Out.push_back([](ProgramSpec &Q) {
      if (Q.Stages.size() < 2)
        return false;
      Q.Stages.pop_back();
      return true;
    });
  }
  for (size_t I = 0; I < P.Stages.size(); ++I) {
    if (P.Stages.size() < 2)
      break;
    if (P.Stages[I].In != P.Stages[I].outTy())
      continue;
    Out.push_back([I](ProgramSpec &Q) {
      if (Q.Stages.size() < 2 || I >= Q.Stages.size() ||
          Q.Stages[I].In != Q.Stages[I].outTy())
        return false;
      Q.Stages.erase(Q.Stages.begin() + I);
      return true;
    });
  }

  // 2. Collapse a splitjoin or feedback stage to a plain filter.
  for (size_t I = 0; I < P.Stages.size(); ++I) {
    if (P.Stages[I].K == StageSpec::Kind::SplitJoin) {
      Out.push_back([I](ProgramSpec &Q) {
        if (I >= Q.Stages.size() ||
            Q.Stages[I].K != StageSpec::Kind::SplitJoin)
          return false;
        StageSpec &St = Q.Stages[I];
        St.F = St.SJ.Branches.front();
        St.K = StageSpec::Kind::Filter;
        St.SJ = SplitJoinSpec();
        return true;
      });
    } else if (P.Stages[I].K == StageSpec::Kind::Feedback) {
      Out.push_back([I](ProgramSpec &Q) {
        if (I >= Q.Stages.size() ||
            Q.Stages[I].K != StageSpec::Kind::Feedback)
          return false;
        StageSpec &St = Q.Stages[I];
        St.K = StageSpec::Kind::Filter;
        St.F = FilterSpec();
        St.F.In = St.F.Out = St.In;
        St.F.BodySeed = St.FB.BodySeed;
        St.FB = FeedbackSpec();
        return true;
      });
    }
  }

  // 3. Remove splitjoin branches / shrink homogeneous width.
  for (size_t I = 0; I < P.Stages.size(); ++I) {
    if (P.Stages[I].K != StageSpec::Kind::SplitJoin)
      continue;
    const SplitJoinSpec &SJ = P.Stages[I].SJ;
    if (SJ.Homogeneous ? SJ.NumBranches > 2 : SJ.Branches.size() > 2) {
      Out.push_back([I](ProgramSpec &Q) {
        if (I >= Q.Stages.size() ||
            Q.Stages[I].K != StageSpec::Kind::SplitJoin)
          return false;
        SplitJoinSpec &S = Q.Stages[I].SJ;
        if (S.Homogeneous) {
          if (S.NumBranches <= 2)
            return false;
          --S.NumBranches;
        } else {
          if (S.Branches.size() <= 2)
            return false;
          S.Branches.pop_back();
        }
        return true;
      });
    }
    if (SJ.Duplicate && !SJ.Branches.empty() && SJ.Branches[0].Pop > 1) {
      // Shared pop shrink for duplicate splitjoins (all branches
      // together, preserving the equal-pop invariant).
      Out.push_back([I](ProgramSpec &Q) {
        if (I >= Q.Stages.size() ||
            Q.Stages[I].K != StageSpec::Kind::SplitJoin)
          return false;
        SplitJoinSpec &S = Q.Stages[I].SJ;
        if (!S.Duplicate || S.Branches.empty() || S.Branches[0].Pop <= 1)
          return false;
        for (FilterSpec &F : S.Branches) {
          --F.Pop;
          F.Peek = std::max(F.Peek - 1, F.Pop);
        }
        return true;
      });
    }
    if (SJ.Homogeneous) {
      Out.push_back([I](ProgramSpec &Q) {
        if (I >= Q.Stages.size() ||
            Q.Stages[I].K != StageSpec::Kind::SplitJoin)
          return false;
        SplitJoinSpec &S = Q.Stages[I].SJ;
        if (!S.Homogeneous || (S.SplitWeight == 1 && S.JoinWeight == 1))
          return false;
        S.SplitWeight = 1;
        S.JoinWeight = 1;
        return true;
      });
    }
  }

  // 4. Feedback simplifications.
  for (size_t I = 0; I < P.Stages.size(); ++I) {
    if (P.Stages[I].K != StageSpec::Kind::Feedback)
      continue;
    Out.push_back([I](ProgramSpec &Q) {
      if (I >= Q.Stages.size() ||
          Q.Stages[I].K != StageSpec::Kind::Feedback)
        return false;
      FeedbackSpec &FB = Q.Stages[I].FB;
      if (FB.Template != 1)
        return false;
      FB.Template = 0;
      FB.Delay = 1;
      FB.HasLoopScale = false;
      return true;
    });
    Out.push_back([I](ProgramSpec &Q) {
      if (I >= Q.Stages.size() ||
          Q.Stages[I].K != StageSpec::Kind::Feedback)
        return false;
      FeedbackSpec &FB = Q.Stages[I].FB;
      if (!FB.HasLoopScale)
        return false;
      FB.HasLoopScale = false;
      return true;
    });
    Out.push_back([I](ProgramSpec &Q) {
      if (I >= Q.Stages.size() ||
          Q.Stages[I].K != StageSpec::Kind::Feedback)
        return false;
      FeedbackSpec &FB = Q.Stages[I].FB;
      if (FB.Template != 0 || FB.Delay <= 1)
        return false;
      --FB.Delay;
      return true;
    });
  }

  // 5. Per-filter shrinks, pipeline filters then splitjoin branches.
  for (size_t I = 0; I < P.Stages.size(); ++I) {
    const StageSpec &St = P.Stages[I];
    if (St.K == StageSpec::Kind::Filter) {
      filterMutations(Out, I, -1);
    } else if (St.K == StageSpec::Kind::SplitJoin && !St.SJ.Duplicate) {
      for (size_t B = 0; B < St.SJ.Branches.size(); ++B)
        filterMutations(Out, I, static_cast<int>(B));
    } else if (St.K == StageSpec::Kind::SplitJoin) {
      // Duplicate splitjoins: per-branch shrinks except the pop shrink,
      // which is handled stage-wide above. filterMutations' pop shrink
      // would desynchronize the shared rate, so emit a reduced set.
      for (size_t B = 0; B < St.SJ.Branches.size(); ++B) {
        size_t Stage = I;
        int Branch = static_cast<int>(B);
        auto Access = [Stage, Branch](ProgramSpec &Q) -> FilterSpec * {
          if (Stage >= Q.Stages.size())
            return nullptr;
          StageSpec &S = Q.Stages[Stage];
          if (S.K != StageSpec::Kind::SplitJoin ||
              static_cast<size_t>(Branch) >= S.SJ.Branches.size())
            return nullptr;
          return &S.SJ.Branches[Branch];
        };
        Out.push_back([Access](ProgramSpec &Q) {
          FilterSpec *F = Access(Q);
          if (!F || F->Peek <= F->Pop)
            return false;
          F->Peek = F->Pop;
          return true;
        });
        Out.push_back([Access](ProgramSpec &Q) {
          FilterSpec *F = Access(Q);
          if (!F || F->Push <= 1)
            return false;
          --F->Push;
          return true;
        });
        Out.push_back([Access](ProgramSpec &Q) {
          FilterSpec *F = Access(Q);
          if (!F || (!F->HasState && !F->HasInit))
            return false;
          F->HasState = false;
          F->HasInit = false;
          return true;
        });
        Out.push_back([Access](ProgramSpec &Q) {
          FilterSpec *F = Access(Q);
          if (!F || F->Flavor == 0)
            return false;
          F->Flavor = 0;
          return true;
        });
      }
    }
  }

  return Out;
}

} // namespace

ReduceResult testing::reduceProgram(const ProgramSpec &P,
                                    const DiffResult &Orig,
                                    const ReduceOptions &O) {
  ReduceResult R;
  R.Minimal = P;
  R.Failure = Orig;

  DiffOptions DO = O.Diff;
  // The C cross-check costs a host-cc invocation per candidate; only
  // keep it when it is the failing oracle.
  if (Orig.Status != DiffStatus::CEmitError)
    DO.CheckC = false;

  bool Progress = true;
  while (Progress && R.Evals < O.MaxEvals) {
    Progress = false;
    std::vector<Mutation> Muts = buildMutations(R.Minimal);
    for (const Mutation &M : Muts) {
      if (R.Evals >= O.MaxEvals)
        break;
      ProgramSpec Candidate = R.Minimal;
      if (!M(Candidate))
        continue;
      ++R.Evals;
      DiffResult D = diffProgram(renderSource(Candidate), Candidate.Top,
                                 DO);
      if (D.Status == Orig.Status) {
        R.Minimal = std::move(Candidate);
        R.Failure = std::move(D);
        ++R.Steps;
        Progress = true;
        break; // restart with a fresh candidate list
      }
    }
  }

  R.Source = renderSource(R.Minimal);
  return R;
}

namespace {

// Splits on '\n', keeping each terminator with its line.
std::vector<std::string> splitPieces(const std::string &S, bool ByLine) {
  std::vector<std::string> Pieces;
  std::string Cur;
  for (char C : S) {
    Cur += C;
    bool Break = ByLine ? (C == '\n') : (C == ' ' || C == '\t' || C == '\n');
    if (Break) {
      Pieces.push_back(std::move(Cur));
      Cur.clear();
    }
  }
  if (!Cur.empty())
    Pieces.push_back(std::move(Cur));
  return Pieces;
}

std::string joinPieces(const std::vector<std::string> &Pieces) {
  std::string S;
  for (const std::string &P : Pieces)
    S += P;
  return S;
}

// One greedy ddmin round over pieces of the given granularity. Returns
// the reduced text (unchanged if nothing could be removed).
void reducePieces(SourceReduction &R, bool ByLine,
                  const std::function<bool(const std::string &)> &StillFails,
                  int MaxEvals) {
  std::vector<std::string> Pieces = splitPieces(R.Source, ByLine);
  size_t Chunk = std::max<size_t>(Pieces.size() / 2, 1);
  while (!Pieces.empty() && R.Evals < MaxEvals) {
    bool Removed = false;
    for (size_t At = 0; At < Pieces.size() && R.Evals < MaxEvals;) {
      size_t Len = std::min(Chunk, Pieces.size() - At);
      std::vector<std::string> Candidate;
      Candidate.reserve(Pieces.size() - Len);
      Candidate.insert(Candidate.end(), Pieces.begin(), Pieces.begin() + At);
      Candidate.insert(Candidate.end(), Pieces.begin() + At + Len,
                       Pieces.end());
      std::string Text = joinPieces(Candidate);
      if (!Text.empty()) {
        ++R.Evals;
        if (StillFails(Text)) {
          Pieces = std::move(Candidate);
          R.Source = std::move(Text);
          ++R.Steps;
          Removed = true;
          continue; // same At now names the next chunk
        }
      }
      At += Len;
    }
    if (Chunk == 1 && !Removed)
      break;
    if (!Removed)
      Chunk = std::max<size_t>(Chunk / 2, 1);
  }
}

} // namespace

SourceReduction testing::reduceSourceText(
    const std::string &Source,
    const std::function<bool(const std::string &)> &StillFails,
    int MaxEvals) {
  SourceReduction R;
  R.Source = Source;
  if (Source.empty())
    return R;
  reducePieces(R, /*ByLine=*/true, StillFails, MaxEvals);
  reducePieces(R, /*ByLine=*/false, StillFails, MaxEvals);
  return R;
}
