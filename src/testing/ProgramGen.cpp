//===--- ProgramGen.cpp ---------------------------------------------------===//

#include "testing/ProgramGen.h"
#include "support/RNG.h"
#include <cassert>
#include <sstream>

using namespace laminar;
using namespace laminar::testing;

const char *testing::tyName(Ty T) {
  return T == Ty::Int ? "int" : "float";
}

namespace {

/// Renders a coefficient for type \p T: small signed ints, or floats
/// in a range that keeps accumulated magnitudes tame.
std::string coeff(Ty T, RNG &R) {
  if (T == Ty::Int) {
    std::ostringstream OS;
    OS << R.nextInt(7) - 3;
    return OS.str();
  }
  std::ostringstream OS;
  OS.precision(17);
  OS << R.nextDouble(-1.25, 1.25);
  return OS.str();
}

/// Emits the work body of \p F into \p OS (two-space indented lines).
/// The body reads Peek tokens of type In, folds them into an
/// accumulator, pops Pop tokens and pushes Push tokens of type Out.
void emitWorkBody(std::ostringstream &OS, const FilterSpec &F) {
  RNG R(F.BodySeed * 0x9E3779B97F4A7C15ULL + 1);
  const char *TI = tyName(F.In);

  OS << "    " << TI << " acc = " << coeff(F.In, R) << ";\n";
  switch (F.Flavor) {
  default:
  case 0:
    OS << "    for (int k = 0; k < " << F.Peek << "; k++)\n";
    if (F.In == Ty::Int)
      OS << "      acc = acc + peek(k) * (" << coeff(F.In, R)
         << " + k % 3);\n";
    else
      OS << "      acc = acc + peek(k) * (" << coeff(F.In, R) << " + k * "
         << coeff(F.In, R) << ");\n";
    break;
  case 1:
    OS << "    for (int k = 0; k < " << F.Peek << "; k++) {\n";
    OS << "      if (k % 2 == 0)\n";
    OS << "        acc = acc + peek(k) * " << coeff(F.In, R) << ";\n";
    OS << "      else\n";
    OS << "        acc = acc - peek(k) * " << coeff(F.In, R) << ";\n";
    OS << "    }\n";
    break;
  case 2:
    OS << "    for (int k = 0; k < " << F.Peek << "; k++)\n";
    if (F.In == Ty::Int)
      OS << "      acc = max(min(acc + peek(k) * " << coeff(F.In, R)
         << ", 1000000), 0 - 1000000);\n";
    else
      OS << "      acc = acc + sin(peek(k) * " << coeff(F.In, R) << ") * "
         << coeff(F.In, R) << ";\n";
    break;
  }

  if (F.HasState) {
    OS << "    acc = acc + s;\n";
    OS << "    s = acc * " << coeff(F.In, R) << " + " << coeff(F.In, R)
       << ";\n";
  }

  OS << "    for (int k = 0; k < " << F.Pop << "; k++)\n";
  OS << "      pop();\n";

  OS << "    for (int k = 0; k < " << F.Push << "; k++)\n";
  if (F.In == F.Out) {
    OS << "      push(acc + k * " << coeff(F.Out, R) << ");\n";
  } else if (F.Out == Ty::Int) {
    OS << "      push((int)(acc * 4.0) + k);\n";
  } else {
    OS << "      push((float)acc * 0.125 + k * " << coeff(Ty::Float, R)
       << ");\n";
  }
}

/// Renders the declaration of filter \p F under \p Name.
std::string renderFilter(const std::string &Name, const FilterSpec &F) {
  RNG R(F.BodySeed * 0x9E3779B97F4A7C15ULL + 2);
  std::ostringstream OS;
  OS << tyName(F.In) << "->" << tyName(F.Out) << " filter " << Name
     << " {\n";
  if (F.HasState)
    OS << "  " << tyName(F.In) << " s;\n";
  if (F.HasState && F.HasInit)
    OS << "  init {\n    s = " << coeff(F.In, R) << ";\n  }\n";
  OS << "  work push " << F.Push << " pop " << F.Pop;
  if (F.Peek > F.Pop)
    OS << " peek " << F.Peek;
  OS << " {\n";
  emitWorkBody(OS, F);
  OS << "  }\n}\n";
  return OS.str();
}

void renderSplitJoin(std::ostringstream &Decls, const std::string &Name,
                     Ty T, const SplitJoinSpec &SJ) {
  std::vector<std::string> BranchNames;
  if (SJ.Homogeneous) {
    assert(SJ.Branches.size() == 1 && "homogeneous sj has one branch spec");
    std::string BN = Name + "B0";
    Decls << renderFilter(BN, SJ.Branches[0]);
    for (int I = 0; I < SJ.NumBranches; ++I)
      BranchNames.push_back(BN);
  } else {
    for (size_t I = 0; I < SJ.Branches.size(); ++I) {
      std::string BN = Name + "B" + std::to_string(I);
      Decls << renderFilter(BN, SJ.Branches[I]);
      BranchNames.push_back(BN);
    }
  }

  Decls << tyName(T) << "->" << tyName(T) << " splitjoin " << Name
        << " {\n";
  if (SJ.Duplicate) {
    Decls << "  split duplicate;\n";
  } else if (SJ.Homogeneous) {
    Decls << "  split roundrobin(" << SJ.SplitWeight << ");\n";
  } else {
    Decls << "  split roundrobin(";
    for (size_t I = 0; I < SJ.Branches.size(); ++I)
      Decls << (I ? ", " : "") << SJ.Branches[I].Pop;
    Decls << ");\n";
  }
  for (const std::string &BN : BranchNames)
    Decls << "  add " << BN << ";\n";
  if (SJ.Homogeneous) {
    Decls << "  join roundrobin(" << SJ.JoinWeight << ");\n";
  } else {
    Decls << "  join roundrobin(";
    for (size_t I = 0; I < SJ.Branches.size(); ++I)
      Decls << (I ? ", " : "") << SJ.Branches[I].Push;
    Decls << ");\n";
  }
  Decls << "}\n";
}

void renderFeedback(std::ostringstream &Decls, const std::string &Name,
                    const FeedbackSpec &FB) {
  RNG R(FB.BodySeed * 0x9E3779B97F4A7C15ULL + 3);
  std::ostringstream D;
  D.precision(17);
  double Decay = R.nextDouble(0.1, 0.9);
  if (FB.Template == 1) {
    // Multi-rate: the loop path upsamples the feedback.
    D << "float->float filter " << Name << "Mix {\n"
      << "  work pop 3 push 2 {\n"
      << "    float x = pop();\n"
      << "    float f1 = pop();\n"
      << "    float f2 = pop();\n"
      << "    push(x + " << Decay << " * f1);\n"
      << "    push(x - " << Decay << " * f2);\n"
      << "  }\n}\n";
    D << "float->float filter " << Name << "Up {\n"
      << "  work pop 1 push 2 {\n"
      << "    float v = pop();\n"
      << "    push(v);\n"
      << "    push(" << R.nextDouble(0.1, 0.9) << " * v);\n"
      << "  }\n}\n";
    D << "float->float feedbackloop " << Name << " {\n"
      << "  join roundrobin(1, 2);\n"
      << "  body " << Name << "Mix();\n"
      << "  split roundrobin(1, 1);\n"
      << "  loop " << Name << "Up();\n"
      << "  enqueue " << R.nextDouble(-0.5, 0.5) << ";\n"
      << "  enqueue " << R.nextDouble(-0.5, 0.5) << ";\n"
      << "}\n";
  } else {
    D << "float->float filter " << Name << "Mix {\n"
      << "  work pop 2 push 2 {\n"
      << "    float x = pop();\n"
      << "    float fb = pop();\n"
      << "    float y = x + " << Decay << " * fb;\n"
      << "    push(y);\n"
      << "    push(y);\n"
      << "  }\n}\n";
    if (FB.HasLoopScale)
      D << "float->float filter " << Name << "Scale {\n"
        << "  work pop 1 push 1 {\n"
        << "    push(pop() * " << R.nextDouble(0.2, 0.95) << ");\n"
        << "  }\n}\n";
    D << "float->float feedbackloop " << Name << " {\n"
      << "  join roundrobin(1, 1);\n"
      << "  body " << Name << "Mix();\n"
      << "  split roundrobin(1, 1);\n";
    if (FB.HasLoopScale)
      D << "  loop " << Name << "Scale();\n";
    for (int I = 0; I < FB.Delay; ++I)
      D << "  enqueue " << R.nextDouble(-0.5, 0.5) << ";\n";
    D << "}\n";
  }
  Decls << D.str();
}

FilterSpec randomFilter(Ty In, Ty Out, RNG &R, const GenOptions &O) {
  FilterSpec F;
  F.In = In;
  F.Out = Out;
  F.Pop = 1 + static_cast<int>(R.nextInt(O.MaxRate));
  F.Push = 1 + static_cast<int>(R.nextInt(O.MaxRate));
  F.Peek = F.Pop + static_cast<int>(R.nextInt(O.MaxPeekMargin + 1));
  F.Flavor = static_cast<int>(R.nextInt(3));
  if (O.AllowState && R.nextInt(3) == 0) {
    F.HasState = true;
    F.HasInit = R.nextInt(2) == 0;
  }
  F.BodySeed = R.next();
  return F;
}

} // namespace

ProgramSpec testing::generateProgram(uint64_t Seed, const GenOptions &O) {
  RNG R(Seed * 2654435761ULL + 0xD1B54A32D192ED03ULL);
  ProgramSpec P;

  int NumStages =
      O.MinStages +
      static_cast<int>(R.nextInt(O.MaxStages - O.MinStages + 1));
  Ty Cur = (O.AllowInt && R.nextInt(3) == 0) ? Ty::Int : Ty::Float;
  int FeedbackBudget = 1;

  for (int S = 0; S < NumStages; ++S) {
    StageSpec St;
    St.In = Cur;

    int64_t Shape = R.nextInt(6);
    if (O.AllowFeedback && FeedbackBudget > 0 && Cur == Ty::Float &&
        Shape == 5) {
      --FeedbackBudget;
      St.K = StageSpec::Kind::Feedback;
      St.FB.Template = R.nextInt(3) == 0 ? 1 : 0;
      St.FB.Delay = 1 + static_cast<int>(R.nextInt(5));
      St.FB.HasLoopScale = R.nextInt(2) == 0;
      St.FB.BodySeed = R.next();
    } else if (O.AllowSplitJoin && (Shape == 3 || Shape == 4)) {
      St.K = StageSpec::Kind::SplitJoin;
      SplitJoinSpec &SJ = St.SJ;
      int Branches = 2 + static_cast<int>(R.nextInt(O.MaxBranches - 1));
      int64_t SJShape = R.nextInt(3);
      if (SJShape == 0) {
        // Homogeneous roundrobin: one filter replicated; any weights
        // balance.
        SJ.Homogeneous = true;
        SJ.NumBranches = Branches;
        SJ.SplitWeight = 1 + static_cast<int>(R.nextInt(2));
        SJ.JoinWeight = 1 + static_cast<int>(R.nextInt(2));
        SJ.Branches.push_back(randomFilter(Cur, Cur, R, O));
      } else if (SJShape == 1) {
        // Heterogeneous duplicate: shared pop rate, join on push rates.
        SJ.Duplicate = true;
        int SharedPop = 1 + static_cast<int>(R.nextInt(O.MaxRate));
        for (int B = 0; B < Branches; ++B) {
          FilterSpec F = randomFilter(Cur, Cur, R, O);
          F.Pop = SharedPop;
          F.Peek = SharedPop +
                   static_cast<int>(R.nextInt(O.MaxPeekMargin + 1));
          SJ.Branches.push_back(F);
        }
      } else {
        // Heterogeneous roundrobin: split on pop rates, join on push
        // rates; each branch fires once per splitter firing.
        for (int B = 0; B < Branches; ++B)
          SJ.Branches.push_back(randomFilter(Cur, Cur, R, O));
      }
    } else {
      St.K = StageSpec::Kind::Filter;
      Ty Next = Cur;
      if (O.AllowCasts && O.AllowInt && R.nextInt(5) == 0)
        Next = Cur == Ty::Int ? Ty::Float : Ty::Int;
      St.F = randomFilter(Cur, Next, R, O);
      Cur = Next;
    }
    P.Stages.push_back(St);
  }
  return P;
}

std::string testing::renderSource(const ProgramSpec &P) {
  assert(!P.Stages.empty() && "program needs at least one stage");
  std::ostringstream Decls;
  std::ostringstream Body;

  for (size_t I = 0; I < P.Stages.size(); ++I) {
    const StageSpec &St = P.Stages[I];
    std::string Name;
    switch (St.K) {
    case StageSpec::Kind::Filter:
      Name = "F" + std::to_string(I);
      Decls << renderFilter(Name, St.F);
      break;
    case StageSpec::Kind::SplitJoin:
      Name = "SJ" + std::to_string(I);
      renderSplitJoin(Decls, Name, St.In, St.SJ);
      break;
    case StageSpec::Kind::Feedback:
      Name = "FB" + std::to_string(I);
      renderFeedback(Decls, Name, St.FB);
      break;
    }
    Body << "  add " << Name << ";\n";
  }

  std::ostringstream OS;
  OS << Decls.str() << tyName(P.inTy()) << "->" << tyName(P.outTy())
     << " pipeline " << P.Top << " {\n"
     << Body.str() << "}\n";
  return OS.str();
}

std::string testing::describe(const ProgramSpec &P) {
  int SJ = 0, FB = 0;
  bool HasInt = false, HasPeek = false, HasState = false;
  auto Scan = [&](const FilterSpec &F) {
    HasInt |= F.In == Ty::Int || F.Out == Ty::Int;
    HasPeek |= F.Peek > F.Pop;
    HasState |= F.HasState;
  };
  for (const StageSpec &St : P.Stages) {
    switch (St.K) {
    case StageSpec::Kind::Filter:
      Scan(St.F);
      break;
    case StageSpec::Kind::SplitJoin:
      ++SJ;
      for (const FilterSpec &F : St.SJ.Branches)
        Scan(F);
      break;
    case StageSpec::Kind::Feedback:
      ++FB;
      break;
    }
  }
  std::ostringstream OS;
  OS << "stages=" << P.Stages.size() << " sj=" << SJ << " fb=" << FB
     << " int=" << (HasInt ? "yes" : "no")
     << " peek=" << (HasPeek ? "yes" : "no")
     << " state=" << (HasState ? "yes" : "no");
  return OS.str();
}
