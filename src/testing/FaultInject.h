//===--- FaultInject.h - Deterministic fault-injection oracle --*- C++ -*-===//
//
// The fault-containment oracle behind `laminar-fuzz --mode=fault`:
// compiles a stream program for the threaded runtime, derives a
// deterministic injection point from the seed (the Nth interpreter
// step / channel pop / channel push of a chosen worker), runs it under
// a watchdog deadline, and checks the containment invariants:
//
//  * the run terminates within the deadline (no hang, no deadlock —
//    runParallel always joins its workers, so a clean return also
//    means no leaked threads);
//  * a tripped injection yields a located, structured origin fault
//    (RunReport.FirstFault) and a schema-valid JSON report;
//  * for programs that run clean without injection, the origin fault
//    is bit-identical across reruns (the determinism contract —
//    programs that fault naturally race the injection, so only the
//    termination/structure invariants apply to them);
//  * optionally, the emitted threaded-C binary with the same injection
//    exits with CFaultExitCode (42) and one "laminar-fault:" stderr
//    line, never blocks.
//
//===----------------------------------------------------------------------===//

#ifndef LAMINAR_TESTING_FAULTINJECT_H
#define LAMINAR_TESTING_FAULTINJECT_H

#include "driver/Driver.h"
#include "interp/Fault.h"
#include <cstdint>
#include <string>

namespace laminar {
namespace testing {

struct FaultOptions {
  /// Steady iterations per run.
  int64_t Iterations = 6;
  /// Randomized-input seed (shared by every leg of one check).
  uint64_t InputSeed = 0xC0FFEE;
  /// Requested worker count; the planner may clamp it.
  unsigned Workers = 4;
  /// Watchdog deadline. Generous by design: it is a hang detector,
  /// not a performance bound, and must never fire on a healthy run.
  int64_t DeadlineMs = 10000;
  /// Also run the threaded-C leg (exit-code 42 + stderr one-liner)
  /// when a host C compiler is available. Expensive: one cc + one
  /// subprocess per check.
  bool CheckC = false;
  /// Scratch directory for C-leg artifacts.
  std::string TempDir = "/tmp";
};

struct FaultCheckResult {
  /// True when a containment invariant was violated (a harness FAIL).
  bool Violation = false;
  /// True when the frontend/planner accepted the program.
  bool Accepted = false;
  /// True when the injection point was actually reached (a run can
  /// finish before its Nth event occurs; that is a pass, not a FAIL).
  bool Tripped = false;
  /// True when the program faults on its own without any injection
  /// (determinism assertion skipped; termination still checked).
  bool NaturalFault = false;
  /// Violation description, empty otherwise.
  std::string Detail;
  /// The origin fault's provenance line (Fault::str()) when tripped.
  std::string FaultLine;
  /// The injection the seed derived (for reports/reproducers).
  interp::FaultPoint Point;
};

/// Derives a deterministic injection point from \p Seed for a compiled
/// plan: pop sites target a cut edge's consumer, push sites its
/// producer, step sites a worker's Nth interpreter step. Plans without
/// cut edges (sequential fallback) always get a step site.
interp::FaultPoint deriveFaultPoint(const parallel::PartitionPlan &Plan,
                                    uint64_t Seed);

/// Runs the fault-containment oracle on \p Source with top stream
/// \p Top, deriving the injection from \p Seed.
FaultCheckResult checkFaultInvariant(const std::string &Source,
                                     const std::string &Top, uint64_t Seed,
                                     const FaultOptions &O = {});

} // namespace testing
} // namespace laminar

#endif // LAMINAR_TESTING_FAULTINJECT_H
