//===--- Reducer.h - Delta-debugging test-case reduction -------*- C++ -*-===//
//
// Shrinks a failing generated program while the failure reproduces:
// drops pipeline stages, collapses splitjoins to a single branch,
// removes branches, shrinks rates and peek margins, strips state/init,
// simplifies work bodies and shortens feedback delays. The result is a
// minimal .str reproducer for the corpus.
//
//===----------------------------------------------------------------------===//

#ifndef LAMINAR_TESTING_REDUCER_H
#define LAMINAR_TESTING_REDUCER_H

#include "testing/Differ.h"
#include "testing/ProgramGen.h"
#include <functional>

namespace laminar {
namespace testing {

struct ReduceOptions {
  /// Oracle options used to re-check candidates. The C cross-check is
  /// disabled internally unless the original failure was a CEmitError.
  DiffOptions Diff;
  /// Upper bound on oracle evaluations.
  int MaxEvals = 300;
};

struct ReduceResult {
  ProgramSpec Minimal;
  /// Failure the minimal program still exhibits.
  DiffResult Failure;
  /// Rendered source of the minimal program.
  std::string Source;
  /// Accepted reduction steps and total oracle evaluations.
  int Steps = 0;
  int Evals = 0;
};

/// Reduces \p P, whose oracle failure was \p Orig. A candidate is
/// accepted when it still fails with the same DiffStatus.
ReduceResult reduceProgram(const ProgramSpec &P, const DiffResult &Orig,
                           const ReduceOptions &O = {});

struct SourceReduction {
  std::string Source;
  /// Accepted reduction steps and total predicate evaluations.
  int Steps = 0;
  int Evals = 0;
};

/// Text-level delta debugging for inputs with no ProgramSpec — the
/// crash-mode reproducers, which are mutated byte soup by construction.
/// Greedily removes line chunks (halving chunk size), then whitespace-
/// delimited tokens within the surviving lines. A candidate is kept
/// while \p StillFails returns true; the predicate is never called on
/// the empty string.
SourceReduction
reduceSourceText(const std::string &Source,
                 const std::function<bool(const std::string &)> &StillFails,
                 int MaxEvals = 400);

} // namespace testing
} // namespace laminar

#endif // LAMINAR_TESTING_REDUCER_H
