//===--- FaultInject.cpp --------------------------------------------------===//

#include "testing/FaultInject.h"
#include "codegen/CEmitter.h"
#include "testing/Differ.h"
#include <cstdio>
#include <fstream>
#include <sstream>
#include <unistd.h>

using namespace laminar;
using namespace laminar::testing;
using namespace laminar::driver;

namespace {

/// Independent sub-draws from one seed (splitmix64 steps).
uint64_t mix(uint64_t &S) {
  S += 0x9E3779B97F4A7C15ULL;
  uint64_t Z = S;
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
  return Z ^ (Z >> 31);
}

/// Bit-exact stream equality (same contract as the differ).
bool sameStream(const interp::TokenStream &A, const interp::TokenStream &B) {
  if (A.Ty != B.Ty)
    return false;
  if (A.Ty == lir::TypeKind::Int)
    return A.I == B.I;
  if (A.F.size() != B.F.size())
    return false;
  for (size_t K = 0; K < A.F.size(); ++K)
    if (bitPattern(A.F[K]) != bitPattern(B.F[K]))
      return false;
  return true;
}

/// The provenance fields under the determinism contract (the worker
/// snapshot is timing-dependent and deliberately excluded).
std::string originKey(const interp::Fault &F) {
  std::ostringstream OS;
  OS << interp::faultKindName(F.Kind) << "|" << F.Worker << "|"
     << F.Partition << "|" << F.Slab << "|" << F.Function << "|"
     << F.Loc.Line << ":" << F.Loc.Col << "|" << F.Message;
  return OS.str();
}

} // namespace

interp::FaultPoint
testing::deriveFaultPoint(const parallel::PartitionPlan &Plan,
                          uint64_t Seed) {
  interp::FaultPoint P;
  uint64_t S = Seed;
  unsigned Pick = static_cast<unsigned>(mix(S) % 3);
  if (Plan.CutEdges.empty() || Pick == 0) {
    // Step site: trip inside a worker's interpreter loop. The count
    // stays small so most injections land within a few firings.
    P.S = interp::FaultPoint::Site::Step;
    P.Worker = static_cast<unsigned>(
        mix(S) % (Plan.NumPartitions ? Plan.NumPartitions : 1));
    P.Count = 1 + mix(S) % 200;
    return P;
  }
  // Channel site: pop trips on a cut edge's consumer, push on its
  // producer, so the injected worker really owns the chosen ring.
  const parallel::CutEdge &E =
      Plan.CutEdges[mix(S) % Plan.CutEdges.size()];
  bool Pop = Pick == 1;
  P.S = Pop ? interp::FaultPoint::Site::Pop : interp::FaultPoint::Site::Push;
  P.Worker = Pop ? E.DstPartition : E.SrcPartition;
  P.Count = 1 + mix(S) % 4;
  return P;
}

FaultCheckResult testing::checkFaultInvariant(const std::string &Source,
                                              const std::string &Top,
                                              uint64_t Seed,
                                              const FaultOptions &O) {
  FaultCheckResult R;

  CompileOptions CO;
  CO.TopName = Top;
  CO.Mode = LoweringMode::Laminar;
  CO.OptLevel = 2;
  CO.Parallel = O.Workers;
  // Bypass the cost gate: small fuzz programs must exercise real
  // multi-worker plans, not all fall back to one partition.
  CO.Tuning.Force = true;
  // Every accepted plan is also a certifier test case, and per-pass
  // verification attributes any structural breakage to the pass that
  // introduced it instead of the fault run that tripped over it.
  CO.VerifyEachPass = true;
  Compilation C = compile(Source, CO);
  if (!C.Ok || !C.Plan)
    return R; // Generator's fault (or no plan): nothing to check.
  R.Accepted = true;
  R.Point = deriveFaultPoint(*C.Plan, Seed);

  // Pre-screen without injection. A program that faults on its own
  // races the injection for "first fault", so the determinism
  // assertion below only applies to naturally-clean programs; the
  // termination invariant applies to everyone.
  RunParams Clean;
  Clean.DeadlineMs = O.DeadlineMs;
  interp::RunResult Base =
      runWithRandomInput(C, O.Iterations, O.InputSeed, nullptr, nullptr,
                         Clean);
  R.NaturalFault = !Base.Ok;
  if (Base.Report.DeadlineExpired) {
    R.Violation = true;
    R.Detail = "un-injected run hit the watchdog deadline (" +
               std::to_string(O.DeadlineMs) + "ms): " + Base.Error;
    return R;
  }

  RunParams Inj = Clean;
  Inj.Inject = R.Point;
  interp::RunResult Run =
      runWithRandomInput(C, O.Iterations, O.InputSeed, nullptr, nullptr,
                         Inj);

  if (Run.Ok) {
    // The Nth event never occurred (short run). Not a violation, but
    // the injection plumbing must not have perturbed the outputs.
    if (Base.Ok && !sameStream(Run.Outputs, Base.Outputs)) {
      R.Violation = true;
      R.Detail = "untripped injection changed program outputs";
    }
    return R;
  }

  R.Tripped = true;
  const interp::Fault &F = Run.Report.FirstFault;
  R.FaultLine = F.str();

  if (Run.Report.DeadlineExpired) {
    R.Violation = true;
    R.Detail = "injected fault did not terminate before the watchdog "
               "deadline: " +
               Run.Error;
    return R;
  }
  if (!F.isSet() || !F.isOrigin()) {
    R.Violation = true;
    R.Detail = "failed run carries no origin fault (error: " + Run.Error +
               ", first fault: " + (F.isSet() ? F.str() : "<none>") + ")";
    return R;
  }
  std::string Json = Run.Report.json();
  if (Json.find("\"schema\": \"laminar-fault-report-v1\"") ==
          std::string::npos ||
      Json.find("\"fault\":") == std::string::npos ||
      Json.find("\"workers\":") == std::string::npos) {
    R.Violation = true;
    R.Detail = "fault report JSON is not schema-valid:\n" + Json;
    return R;
  }
  if (F.Kind == interp::FaultKind::Injected) {
    if (F.Worker != static_cast<int>(R.Point.Worker)) {
      R.Violation = true;
      R.Detail = "injected fault attributed to worker " +
                 std::to_string(F.Worker) + ", expected worker " +
                 std::to_string(R.Point.Worker);
      return R;
    }
    // Step-site faults fire on a concrete instruction, so the report
    // must at least name the executing function. A source location is
    // best-effort: the interpreter falls back to the nearest preceding
    // located instruction, but a fully compiler-generated block
    // legitimately has none.
    if (R.Point.S == interp::FaultPoint::Site::Step && F.Function.empty()) {
      R.Violation = true;
      R.Detail = "step-site fault lacks provenance: " + F.str();
      return R;
    }
  }

  // Determinism: bit-identical origin fault across reruns, asserted
  // only for naturally-clean programs (see header).
  if (!R.NaturalFault) {
    interp::RunResult Run2 =
        runWithRandomInput(C, O.Iterations, O.InputSeed, nullptr, nullptr,
                           Inj);
    if (Run2.Ok ||
        originKey(Run2.Report.FirstFault) != originKey(F)) {
      R.Violation = true;
      R.Detail =
          "origin fault is not deterministic:\n  first:  " + F.str() +
          "\n  rerun:  " +
          (Run2.Ok ? std::string("<run succeeded>")
                   : Run2.Report.FirstFault.str());
      return R;
    }
  }

  // Threaded-C leg: the same injection, compiled, must exit with the
  // documented fault code and one stderr line — and never block.
  if (O.CheckC && hostCompilerAvailable() && C.Plan->NumPartitions > 1) {
    codegen::CEmitOptions CE;
    CE.InputSeed = O.InputSeed;
    CE.DefaultIterations = O.Iterations;
    CE.Plan = &*C.Plan;
    CE.InjectWorker = static_cast<int>(R.Point.Worker);
    CE.InjectSlab =
        static_cast<int64_t>(R.Point.Count > 0 ? R.Point.Count - 1 : 0);
    std::string CSource = codegen::emitC(*C.Module, CE);

    static int Counter = 0;
    std::string Base2 = O.TempDir + "/laminar-fault-" +
                        std::to_string(::getpid()) + "-" +
                        std::to_string(Counter++);
    std::string CPath = Base2 + ".c", Bin = Base2 + ".bin",
                OutP = Base2 + ".out", ErrP = Base2 + ".err";
    {
      std::ofstream Out(CPath);
      Out << CSource;
    }
    std::string Detail;
    if (std::system(("cc -O1 -pthread -o " + Bin + " " + CPath +
                     " -lm 2> " + ErrP)
                        .c_str()) != 0) {
      Detail = "threaded C with injection does not compile";
    } else {
      // `timeout` bounds the never-deadlock invariant from outside
      // the process under test.
      int WS = std::system(("timeout 20 " + Bin + " " +
                            std::to_string(O.Iterations) + " > " + OutP +
                            " 2> " + ErrP)
                               .c_str());
      int Exit = WIFEXITED(WS) ? WEXITSTATUS(WS) : -1;
      std::ifstream ErrIn(ErrP);
      std::ostringstream ErrSS;
      ErrSS << ErrIn.rdbuf();
      if (Exit == 124)
        Detail = "threaded C binary hung under injection (timeout)";
      else if (Exit != codegen::CFaultExitCode && Exit != 0)
        Detail = "threaded C binary exited " + std::to_string(Exit) +
                 ", expected " + std::to_string(codegen::CFaultExitCode) +
                 " (fault) or 0 (injection slab not reached)";
      else if (Exit == codegen::CFaultExitCode &&
               ErrSS.str().find("laminar-fault:") == std::string::npos)
        Detail = "faulting threaded C binary printed no laminar-fault: "
                 "line on stderr";
    }
    std::remove(CPath.c_str());
    std::remove(Bin.c_str());
    std::remove(OutP.c_str());
    std::remove(ErrP.c_str());
    if (!Detail.empty()) {
      R.Violation = true;
      R.Detail = Detail;
      return R;
    }
  }

  return R;
}
