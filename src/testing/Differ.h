//===--- Differ.h - Multi-configuration differential oracle ----*- C++ -*-===//
//
// Compiles one stream program through every (lowering, opt-level)
// configuration, runs each on shared randomized input, and flags any
// bit-level divergence from the FIFO -O0 reference. Each configuration
// is additionally round-tripped through the textual IR
// (Printer -> IRParser -> Verifier -> re-run) and, when a host C
// compiler is available, cross-checked against its emitted C program.
//
//===----------------------------------------------------------------------===//

#ifndef LAMINAR_TESTING_DIFFER_H
#define LAMINAR_TESTING_DIFFER_H

#include "driver/Driver.h"
#include <cstdint>
#include <string>
#include <vector>

namespace laminar {
namespace testing {

/// One compiler configuration under test.
struct DiffConfig {
  driver::LoweringMode Mode = driver::LoweringMode::Fifo;
  unsigned OptLevel = 0;
  bool UnrollFifo = false;
  /// Partition count for threaded execution (0 = sequential).
  unsigned Parallel = 0;
  /// Planner tuning for the threaded configurations. Force bypasses
  /// the cost gate (so small fuzz programs exercise real multi-worker
  /// plans instead of all falling back), Batch pins the slab batching
  /// factor, SlabBase scales the skew windows, FissionAlways
  /// replicates every legal stateless filter.
  bool Force = false;
  unsigned Batch = 0;
  int64_t SlabBase = 2;
  bool FissionAlways = false;

  std::string name() const;
};

/// All configurations the oracle compares, reference (fifo-O0) first.
/// With \p Parallel the list also carries the threaded configurations
/// (fifo-O0 and laminar-O2 at 2 and 4 workers) plus the tuned
/// laminar-O2-par4 variants — forced gate, pinned batching, minimal
/// skew windows, forced fission — so every planner feature is diffed
/// bit-exact against the sequential reference. The gated
/// laminar-O2-par4 configuration stays last.
std::vector<DiffConfig> allConfigs(bool Parallel = false);

struct DiffOptions {
  /// Steady iterations each configuration executes.
  int64_t Iterations = 4;
  /// Seed of the shared randomized input stream.
  uint64_t InputSeed = 0xC0FFEE;
  /// Re-verify the module after every optimization pass.
  bool VerifyEachPass = true;
  /// Round-trip each module through the textual IR.
  bool CheckRoundTrip = true;
  /// Cross-check emitted C against the interpreter (skipped
  /// automatically when no host C compiler is found).
  bool CheckC = true;
  /// Also compile and run the parallel configurations (the
  /// parallel-vs-fifo-O0 oracle): fifo-O0 and laminar-O2 partitioned
  /// across 2 and 4 workers, interpreted on real threads and (with
  /// CheckC) cross-checked as threaded C.
  bool CheckParallel = false;
  /// Scratch directory for C cross-check artifacts.
  std::string TempDir = "/tmp";
};

enum class DiffStatus {
  Ok,
  /// The frontend (parse/sema/graph/schedule) rejected the program:
  /// the generator's fault, not the compiler's. Not a failure.
  FrontendReject,
  /// The *reference* execution (fifo-O0) itself trapped — e.g. a
  /// numerically diverging stateful recurrence pushed a float-to-int
  /// conversion out of range. All configurations compute identical
  /// values, so a reference trap is a property of the generated
  /// program, not of any lowering, and there is no reference stream
  /// to diff against. Not a failure. (A trap in a *non*-reference
  /// configuration only is still RunError: that is a miscompile.)
  RuntimeReject,
  /// Lowering, verification or optimization failed on a program the
  /// frontend accepted.
  CompileError,
  /// The interpreter faulted (underrun, div-by-zero, budget).
  RunError,
  /// Two configurations produced different output streams.
  OutputDivergence,
  /// Printer -> IRParser round-trip failed or changed behaviour.
  RoundTripError,
  /// Emitted C failed to compile/run or disagreed with the interpreter.
  CEmitError,
};

const char *diffStatusName(DiffStatus S);

struct DiffResult {
  DiffStatus Status = DiffStatus::Ok;
  /// Name of the configuration that failed (empty for Ok).
  std::string Config;
  /// Error log, or first-divergence description.
  std::string Detail;

  /// True for any status that implicates the compiler.
  bool failed() const {
    return Status != DiffStatus::Ok &&
           Status != DiffStatus::FrontendReject &&
           Status != DiffStatus::RuntimeReject;
  }
};

/// Runs the full oracle on \p Source with top-level stream \p Top.
DiffResult diffProgram(const std::string &Source, const std::string &Top,
                       const DiffOptions &O = {});

/// Cached probe for a working host C compiler ("cc").
bool hostCompilerAvailable();

/// Bit pattern of a double (for bit-exact float comparison: NaN
/// payloads and signed zeros must not silently diverge).
uint64_t bitPattern(double D);

} // namespace testing
} // namespace laminar

#endif // LAMINAR_TESTING_DIFFER_H
