//===--- Mutator.cpp ------------------------------------------------------===//

#include "testing/Mutator.h"
#include "driver/Driver.h"
#include "support/RNG.h"
#include <algorithm>
#include <cstring>
#include <sstream>
#include <vector>

using namespace laminar;
using namespace laminar::testing;

namespace {

// Tokens the mutator splices in. Weighted toward the constructs that
// historically break compilers: delimiters (nesting confusion), rate
// keywords (scheduler arithmetic) and extreme numbers (overflow paths).
const char *const SpliceTokens[] = {
    "filter", "pipeline", "splitjoin", "feedbackloop", "work", "init",
    "push", "pop", "peek", "add", "split", "join", "roundrobin",
    "duplicate", "enqueue", "body", "loop", "int", "float", "void",
    "boolean", "if", "else", "for", "while", "true", "false",
    "{", "}", "(", ")", "[", "]", ";", ",", "->", "=", "==", "!=",
    "+", "-", "*", "/", "%", "<<", ">>", "&&", "||", "!", "~",
    "0", "1", "-1", "2", "7", "1000000007", "65536", "2147483647",
    "4294967295", "9223372036854775807", "-9223372036854775808",
    "18446744073709551615", "1e308", "1e-308", ".5", "0.0",
    "x", "_", "Top", "/*", "*/", "//",
};

// Raw bytes for single-byte smashes: printable structure characters plus
// a few non-ASCII and control bytes to stress the lexer's error path.
const char SmashBytes[] = "{}();,->=+-*/%<>!&|^~.0123456789azAZ_\"'\\\t\n"
                          "\x01\x7f\x80\xff";

std::vector<std::string> splitLines(const std::string &S) {
  std::vector<std::string> Lines;
  std::string Cur;
  for (char C : S) {
    Cur += C;
    if (C == '\n') {
      Lines.push_back(std::move(Cur));
      Cur.clear();
    }
  }
  if (!Cur.empty())
    Lines.push_back(std::move(Cur));
  return Lines;
}

std::string joinLines(const std::vector<std::string> &Lines) {
  std::string S;
  for (const std::string &L : Lines)
    S += L;
  return S;
}

void mutateOnce(std::string &S, RNG &R) {
  if (S.empty())
    S = " ";
  size_t N = S.size();
  switch (R.nextInt(9)) {
  case 0: { // smash one byte
    S[R.nextInt(N)] =
        SmashBytes[R.nextInt(sizeof(SmashBytes) - 1)];
    break;
  }
  case 1: { // delete a span
    size_t At = R.nextInt(N);
    size_t Len = 1 + R.nextInt(std::min<size_t>(N - At, 32));
    S.erase(At, Len);
    break;
  }
  case 2: { // duplicate a span in place
    size_t At = R.nextInt(N);
    size_t Len = 1 + R.nextInt(std::min<size_t>(N - At, 24));
    S.insert(At, S.substr(At, Len));
    break;
  }
  case 3: { // splice a token
    const char *Tok =
        SpliceTokens[R.nextInt(sizeof(SpliceTokens) / sizeof(*SpliceTokens))];
    size_t At = R.nextInt(N + 1);
    S.insert(At, std::string(" ") + Tok + " ");
    break;
  }
  case 4: { // swap two whole lines
    std::vector<std::string> Lines = splitLines(S);
    if (Lines.size() >= 2) {
      size_t A = R.nextInt(Lines.size());
      size_t B = R.nextInt(Lines.size());
      std::swap(Lines[A], Lines[B]);
      S = joinLines(Lines);
    }
    break;
  }
  case 5: { // copy one line somewhere else
    std::vector<std::string> Lines = splitLines(S);
    if (!Lines.empty()) {
      std::string Line = Lines[R.nextInt(Lines.size())];
      Lines.insert(Lines.begin() + R.nextInt(Lines.size() + 1),
                   std::move(Line));
      S = joinLines(Lines);
    }
    break;
  }
  case 6: { // replace an integer literal with an extreme value
    size_t Start = R.nextInt(N);
    size_t DigitAt = std::string::npos;
    for (size_t I = 0; I < N; ++I) {
      size_t P = (Start + I) % N;
      if (S[P] >= '0' && S[P] <= '9') {
        DigitAt = P;
        break;
      }
    }
    if (DigitAt != std::string::npos) {
      size_t Lo = DigitAt, Hi = DigitAt + 1;
      while (Lo > 0 && S[Lo - 1] >= '0' && S[Lo - 1] <= '9')
        --Lo;
      while (Hi < N && S[Hi] >= '0' && S[Hi] <= '9')
        ++Hi;
      static const char *const Extremes[] = {
          "0", "1000000007", "2147483647", "9223372036854775807",
          "18446744073709551615", "999999999999999999999999",
      };
      S.replace(Lo, Hi - Lo,
                Extremes[R.nextInt(sizeof(Extremes) / sizeof(*Extremes))]);
    }
    break;
  }
  case 7: { // truncate the tail
    S.erase(R.nextInt(N));
    break;
  }
  case 8: { // insert a run of one repeated byte (lexer/parser loops)
    char C = SmashBytes[R.nextInt(sizeof(SmashBytes) - 1)];
    S.insert(R.nextInt(N + 1), std::string(1 + R.nextInt(64), C));
    break;
  }
  }
}

} // namespace

std::string testing::mutateSource(const std::string &Source, uint64_t Seed,
                                  const MutateOptions &O) {
  RNG R(Seed ^ 0xD1B54A32D192ED03ULL);
  std::string S = Source;
  int Count = 1 + static_cast<int>(R.nextInt(std::max(1, O.MaxMutations)));
  for (int I = 0; I < Count; ++I)
    mutateOnce(S, R);
  return S;
}

CompilerLimits testing::crashCheckLimits() {
  CompilerLimits L;
  L.MaxGraphNodes = 512;
  L.MaxRepetition = 1 << 12;
  L.MaxSteadyFirings = 1 << 14;
  L.MaxUnrolledInsts = 1 << 16;
  L.MaxPeekWindow = 1 << 10;
  L.MaxChannelTokens = 1 << 14;
  L.MaxErrors = 16;
  return L;
}

CrashCheckResult testing::checkCrashInvariant(const std::string &Source,
                                              const std::string &Top) {
  struct Config {
    driver::LoweringMode Mode;
    unsigned OptLevel;
    bool UnrollFifo;
    bool Analyze;
    const char *Name;
  };
  // The analyzing configuration holds the static checks to the same
  // crash-free, located-rejection bar as the rest of the compiler.
  static const Config Configs[] = {
      {driver::LoweringMode::Fifo, 0, false, false, "fifo-O0"},
      {driver::LoweringMode::Fifo, 1, true, false, "fifo-unroll-O1"},
      {driver::LoweringMode::Laminar, 2, false, false, "laminar-O2"},
      {driver::LoweringMode::Fifo, 1, false, true, "fifo-O1-analyze"},
  };

  CrashCheckResult Result;
  for (const Config &Cfg : Configs) {
    driver::CompileOptions Opts;
    Opts.TopName = Top;
    Opts.Mode = Cfg.Mode;
    Opts.OptLevel = Cfg.OptLevel;
    Opts.UnrollFifo = Cfg.UnrollFifo;
    Opts.Analyze = Cfg.Analyze;
    Opts.Limits = crashCheckLimits();
    // Adversarial inputs double as invariant fuzzing: any pass that
    // breaks rate consistency or token liveness on byte soup fails
    // here with the pass named, not downstream.
    Opts.VerifyEachPass = true;
    driver::Compilation C = driver::compile(Source, Opts);
    if (C.Ok) {
      Result.Accepted = true;
      // Run briefly under a small step budget: mutated programs may
      // contain honest infinite loops, and the invariant only demands
      // that execution fails cleanly, not that it terminates.
      interp::TokenStream Input =
          interp::makeRandomInput(C.Module->getInputType(),
                                  driver::requiredInputTokens(C, 2), 0xC0FFEE);
      (void)interp::runModule(*C.Module, Input, 2,
                              /*StepBudget=*/2'000'000ULL);
      continue;
    }
    if (!C.hasLocatedError()) {
      std::ostringstream OS;
      OS << "config " << Cfg.Name << " rejected the input at stage '"
         << driver::compileStageName(C.Stage)
         << "' without an error diagnostic carrying a source location\n"
         << C.ErrorLog;
      Result.Violation = true;
      Result.Detail = OS.str();
      return Result;
    }
  }
  return Result;
}
