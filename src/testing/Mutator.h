//===--- Mutator.h - Crash-mode source mutation and oracle -----*- C++ -*-===//
//
// The differential fuzzer (Differ) only sees rate-consistent programs
// the generator can produce. Crash mode attacks the other half of the
// robustness claim: it byte- and token-mutates valid .str sources into
// adversarial ones and checks the crash-free invariant — every input
// either compiles or is rejected with at least one error diagnostic
// carrying a valid source location. Memory errors are the sanitizers'
// half of the bargain: under ASan/UBSan with -fno-sanitize-recover any
// crash aborts the fuzz process itself.
//
//===----------------------------------------------------------------------===//

#ifndef LAMINAR_TESTING_MUTATOR_H
#define LAMINAR_TESTING_MUTATOR_H

#include "support/Limits.h"
#include <cstdint>
#include <string>

namespace laminar {
namespace testing {

struct MutateOptions {
  /// Mutations applied per input, uniform in [1, MaxMutations].
  int MaxMutations = 4;
};

/// Deterministically mutates source text: byte smashes, span
/// deletion/duplication, token insertion, line swaps and splices,
/// extreme-number substitution, truncation. Same (Source, Seed, O)
/// always yields the same output.
std::string mutateSource(const std::string &Source, uint64_t Seed,
                         const MutateOptions &O = {});

/// Tight limits for the crash oracle: small enough that mutated inputs
/// exercise every governor path quickly, large enough that generated
/// programs still compile before mutation.
CompilerLimits crashCheckLimits();

struct CrashCheckResult {
  /// At least one configuration compiled the input successfully.
  bool Accepted = false;
  /// The invariant broke: a configuration rejected the input without a
  /// located error diagnostic (or failed in the backend, which means
  /// the compiler — not the input — is at fault).
  bool Violation = false;
  std::string Detail;
};

/// Compiles \p Source under fifo-O0, fifo-unroll-O1 and laminar-O2 with
/// crashCheckLimits(), interpreting accepted programs briefly. Never
/// throws; crashes are left to the sanitizers by design.
CrashCheckResult checkCrashInvariant(const std::string &Source,
                                     const std::string &Top);

} // namespace testing
} // namespace laminar

#endif // LAMINAR_TESTING_MUTATOR_H
