//===--- Differ.cpp -------------------------------------------------------===//

#include "testing/Differ.h"
#include "codegen/CEmitter.h"
#include "lir/IRParser.h"
#include "lir/Printer.h"
#include "lir/Verifier.h"
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <unistd.h>

using namespace laminar;
using namespace laminar::testing;
using namespace laminar::driver;

std::string DiffConfig::name() const {
  std::string N = Mode == LoweringMode::Fifo ? "fifo" : "laminar";
  N += "-O" + std::to_string(OptLevel);
  if (UnrollFifo)
    N += "-unroll";
  if (Parallel)
    N += "-par" + std::to_string(Parallel);
  if (Force)
    N += "-force";
  if (Batch)
    N += "-b" + std::to_string(Batch);
  if (SlabBase != 2)
    N += "-skew" + std::to_string(SlabBase);
  if (FissionAlways)
    N += "-fission";
  return N;
}

std::vector<DiffConfig> testing::allConfigs(bool Parallel) {
  std::vector<DiffConfig> Configs = {
      {LoweringMode::Fifo, 0, false},    {LoweringMode::Fifo, 1, false},
      {LoweringMode::Fifo, 2, false},    {LoweringMode::Fifo, 2, true},
      {LoweringMode::Laminar, 0, false}, {LoweringMode::Laminar, 1, false},
      {LoweringMode::Laminar, 2, false},
  };
  if (Parallel) {
    Configs.push_back({LoweringMode::Fifo, 0, false, 2});
    Configs.push_back({LoweringMode::Fifo, 0, false, 4});
    Configs.push_back({LoweringMode::Laminar, 2, false, 2});
    // Tuned planner variants, all gate-forced so small fuzz programs
    // exercise real multi-partition plans: pinned batching factor,
    // minimal skew windows (tightest legal backpressure), and forced
    // fission of every legal stateless filter.
    DiffConfig Forced{LoweringMode::Laminar, 2, false, 4};
    Forced.Force = true;
    Configs.push_back(Forced);
    DiffConfig Batched = Forced;
    Batched.Batch = 4;
    Configs.push_back(Batched);
    DiffConfig Skewed = Forced;
    Skewed.SlabBase = 1;
    Configs.push_back(Skewed);
    DiffConfig Fissioned = Forced;
    Fissioned.FissionAlways = true;
    Configs.push_back(Fissioned);
    // The gated configuration last (tests key off this position).
    Configs.push_back({LoweringMode::Laminar, 2, false, 4});
  }
  return Configs;
}

const char *testing::diffStatusName(DiffStatus S) {
  switch (S) {
  case DiffStatus::Ok:
    return "ok";
  case DiffStatus::FrontendReject:
    return "frontend-reject";
  case DiffStatus::RuntimeReject:
    return "runtime-reject";
  case DiffStatus::CompileError:
    return "compile-error";
  case DiffStatus::RunError:
    return "run-error";
  case DiffStatus::OutputDivergence:
    return "output-divergence";
  case DiffStatus::RoundTripError:
    return "roundtrip-error";
  case DiffStatus::CEmitError:
    return "cemit-error";
  }
  return "unknown";
}

uint64_t testing::bitPattern(double D) {
  uint64_t Bits;
  static_assert(sizeof(Bits) == sizeof(D));
  std::memcpy(&Bits, &D, sizeof(Bits));
  return Bits;
}

bool testing::hostCompilerAvailable() {
  static const bool Available = [] {
    return std::system("cc --version > /dev/null 2>&1") == 0;
  }();
  return Available;
}

namespace {

std::string formatToken(const interp::TokenStream &S, size_t K) {
  std::ostringstream OS;
  if (S.Ty == lir::TypeKind::Int) {
    OS << S.I[K];
  } else {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.17g (0x%016llx)", S.F[K],
                  static_cast<unsigned long long>(bitPattern(S.F[K])));
    OS << Buf;
  }
  return OS.str();
}

/// Bit-exact stream comparison; returns a description of the first
/// mismatch, or empty when identical.
std::string compareStreams(const interp::TokenStream &Ref,
                           const interp::TokenStream &Got) {
  if (Ref.Ty != Got.Ty)
    return "output stream types differ";
  if (Ref.size() != Got.size()) {
    std::ostringstream OS;
    OS << "output length " << Got.size() << " != reference "
       << Ref.size();
    return OS.str();
  }
  for (size_t K = 0; K < Ref.size(); ++K) {
    bool Same = Ref.Ty == lir::TypeKind::Int
                    ? Ref.I[K] == Got.I[K]
                    : bitPattern(Ref.F[K]) == bitPattern(Got.F[K]);
    if (!Same) {
      std::ostringstream OS;
      OS << "token " << K << ": got " << formatToken(Got, K)
         << ", reference " << formatToken(Ref, K);
      return OS.str();
    }
  }
  return "";
}

/// Renders outputs the way the emitted C main() prints them.
std::string renderOutputs(const interp::TokenStream &S) {
  std::ostringstream OS;
  if (S.Ty == lir::TypeKind::Int) {
    for (int64_t V : S.I)
      OS << V << "\n";
  } else {
    for (double V : S.F) {
      char Buf[64];
      std::snprintf(Buf, sizeof(Buf), "%.17g\n", V);
      OS << Buf;
    }
  }
  return OS.str();
}

Compilation compileConfig(const std::string &Source, const std::string &Top,
                          const DiffConfig &Cfg, const DiffOptions &O) {
  CompileOptions CO;
  CO.TopName = Top;
  CO.Mode = Cfg.Mode;
  CO.OptLevel = Cfg.OptLevel;
  CO.UnrollFifo = Cfg.UnrollFifo;
  CO.Parallel = Cfg.Parallel;
  CO.Tuning.Force = Cfg.Force;
  CO.Tuning.Batch = Cfg.Batch;
  CO.Tuning.SlabBase = Cfg.SlabBase;
  if (Cfg.FissionAlways)
    CO.Tuning.Fission = parallel::ParallelTuning::FissionMode::Always;
  CO.VerifyEachPass = O.VerifyEachPass;
  return compile(Source, CO);
}

/// Printer -> IRParser -> Verifier -> re-print -> re-run. Returns a
/// failure description or empty. Parallel modules (@steady_p0..) skip
/// only the re-run: runModule executes @init/@steady, and the threaded
/// runner needs the PartitionPlan, which a reparsed module has lost —
/// the print/parse/verify/re-print legs still cover them.
std::string roundTrip(const Compilation &C, const interp::RunResult &Run,
                      int64_t Iters, uint64_t InputSeed) {
  std::string Text = lir::printModule(*C.Module);
  DiagnosticEngine Diags;
  std::unique_ptr<lir::Module> Reparsed = lir::parseIR(Text, Diags);
  if (!Reparsed)
    return "IRParser rejected printed module:\n" + Diags.str();
  std::vector<std::string> Violations = lir::verifyModule(*Reparsed);
  if (!Violations.empty()) {
    std::string D = "reparsed module fails verification:\n";
    for (const std::string &V : Violations)
      D += "  " + V + "\n";
    return D;
  }
  std::string Text2 = lir::printModule(*Reparsed);
  if (Text != Text2)
    return "module text changed across print -> parse -> print";
  if (C.Plan)
    return "";
  interp::TokenStream In = interp::makeRandomInput(
      C.Module->getInputType(), requiredInputTokens(C, Iters), InputSeed);
  interp::RunResult R2 = interp::runModule(*Reparsed, In, Iters);
  if (!R2.Ok)
    return "reparsed module failed to run: " + R2.Error;
  std::string Diff = compareStreams(Run.Outputs, R2.Outputs);
  if (!Diff.empty())
    return "reparsed module diverges: " + Diff;
  return "";
}

/// Emits C, compiles it with the host compiler and compares its stdout
/// against the interpreter's outputs. Returns a failure description or
/// empty. Assumes hostCompilerAvailable().
std::string crossCheckC(const Compilation &C, const interp::RunResult &Run,
                        int64_t Iters, uint64_t InputSeed,
                        const std::string &TempDir) {
  codegen::CEmitOptions CE;
  CE.InputSeed = InputSeed;
  CE.DefaultIterations = Iters;
  if (C.Plan)
    CE.Plan = &*C.Plan;
  std::string CSource = codegen::emitC(*C.Module, CE);

  static int Counter = 0;
  std::string Base = TempDir + "/laminar-fuzz-" +
                     std::to_string(::getpid()) + "-" +
                     std::to_string(Counter++);
  std::string CPath = Base + ".c";
  std::string Bin = Base + ".bin";
  std::string OutPath = Base + ".out";
  {
    std::ofstream Out(CPath);
    Out << CSource;
  }
  std::string Result;
  std::string CompileCmd =
      "cc -O1 -pthread -o " + Bin + " " + CPath + " -lm 2> " + OutPath;
  if (std::system(CompileCmd.c_str()) != 0) {
    std::ifstream Log(OutPath);
    std::ostringstream SS;
    SS << Log.rdbuf();
    Result = "emitted C does not compile:\n" + SS.str();
  } else {
    std::string RunCmd =
        Bin + " " + std::to_string(Iters) + " > " + OutPath;
    if (std::system(RunCmd.c_str()) != 0) {
      Result = "emitted C program exited nonzero";
    } else {
      std::ifstream In(OutPath);
      std::ostringstream SS;
      SS << In.rdbuf();
      if (SS.str() != renderOutputs(Run.Outputs))
        Result = "emitted C output differs from interpreter";
    }
  }
  std::remove(CPath.c_str());
  std::remove(Bin.c_str());
  std::remove(OutPath.c_str());
  return Result;
}

} // namespace

DiffResult testing::diffProgram(const std::string &Source,
                                const std::string &Top,
                                const DiffOptions &O) {
  DiffResult R;
  std::vector<DiffConfig> Configs = allConfigs(O.CheckParallel);

  // Reference: FIFO at O0.
  Compilation Ref = compileConfig(Source, Top, Configs[0], O);
  if (!Ref.Ok) {
    R.Config = Configs[0].name();
    if (Ref.failedInBackend()) {
      R.Status = DiffStatus::CompileError;
      R.Detail = std::string("stage ") + compileStageName(Ref.Stage) +
                 ": " + Ref.ErrorLog;
    } else {
      R.Status = DiffStatus::FrontendReject;
      R.Detail = Ref.ErrorLog;
    }
    return R;
  }
  interp::RunResult RefRun = runWithRandomInput(Ref, O.Iterations,
                                                O.InputSeed);
  if (!RefRun.Ok) {
    R.Status = DiffStatus::RuntimeReject;
    R.Config = Configs[0].name();
    R.Detail = RefRun.Error;
    return R;
  }

  bool DoC = O.CheckC && hostCompilerAvailable();
  for (const DiffConfig &Cfg : Configs) {
    bool IsRef = Cfg.Mode == Configs[0].Mode &&
                 Cfg.OptLevel == Configs[0].OptLevel &&
                 Cfg.UnrollFifo == Configs[0].UnrollFifo &&
                 Cfg.Parallel == Configs[0].Parallel;
    Compilation C = IsRef ? std::move(Ref)
                          : compileConfig(Source, Top, Cfg, O);
    if (!C.Ok) {
      // The reference compiled, so any failure here — frontend
      // included — is a configuration-dependent compiler bug.
      R.Status = DiffStatus::CompileError;
      R.Config = Cfg.name();
      R.Detail = std::string("stage ") + compileStageName(C.Stage) + ": " +
                 C.ErrorLog;
      return R;
    }
    interp::RunResult Run =
        IsRef ? RefRun : runWithRandomInput(C, O.Iterations, O.InputSeed);
    if (!Run.Ok) {
      R.Status = DiffStatus::RunError;
      R.Config = Cfg.name();
      R.Detail = Run.Error;
      return R;
    }
    std::string Diff = compareStreams(RefRun.Outputs, Run.Outputs);
    if (!Diff.empty()) {
      R.Status = DiffStatus::OutputDivergence;
      R.Config = Cfg.name();
      R.Detail = Diff;
      return R;
    }
    if (O.CheckRoundTrip) {
      std::string RT = roundTrip(C, Run, O.Iterations, O.InputSeed);
      if (!RT.empty()) {
        R.Status = DiffStatus::RoundTripError;
        R.Config = Cfg.name();
        R.Detail = RT;
        return R;
      }
    }
    // The C cross-check is expensive (one host-cc invocation per
    // program per config), so only the two extreme configurations run
    // it — the unoptimized baseline and the fully optimized Laminar
    // form — plus every parallel configuration, whose threaded C
    // backend has no other native-execution oracle.
    if (DoC &&
        ((Cfg.Mode == LoweringMode::Fifo && Cfg.OptLevel == 0) ||
         (Cfg.Mode == LoweringMode::Laminar && Cfg.OptLevel == 2) ||
         Cfg.Parallel != 0)) {
      std::string CC =
          crossCheckC(C, Run, O.Iterations, O.InputSeed, O.TempDir);
      if (!CC.empty()) {
        R.Status = DiffStatus::CEmitError;
        R.Config = Cfg.name();
        R.Detail = CC;
        return R;
      }
    }
  }
  return R;
}
