//===--- PlanCertifier.cpp ------------------------------------------------===//

#include "verify/PlanCertifier.h"
#include "analysis/Lattice.h"
#include "lower/Lowering.h"
#include "parallel/SpscQueue.h"
#include "schedule/ScheduleSim.h"
#include <algorithm>
#include <cstdint>
#include <sstream>

using namespace laminar;
using namespace laminar::verify;
using analysis::IntRange;

namespace {

/// One arc of the marked graph over partitions. Data arcs model "a slab
/// must be produced before it is consumed" (marking 0); credit arcs
/// model the producer's run-ahead window (marking = SlabCapacity).
struct Arc {
  unsigned From = 0;
  unsigned To = 0;
  int64_t Marking = 0;
  const graph::Channel *Ch = nullptr;
  bool Credit = false;
};

std::string edgeName(const graph::Channel *Ch) {
  return "'" + Ch->getSrc()->getName() + "' -> '" +
         Ch->getDst()->getName() + "'";
}

std::string arcLabel(const Arc &A) {
  std::ostringstream OS;
  OS << "partition " << A.From << " -("
     << (A.Credit ? "credit " : "data ") << edgeName(A.Ch);
  if (A.Credit)
    OS << ": window " << A.Marking << " slab(s)";
  OS << ")-> partition " << A.To;
  return OS.str();
}

/// Finds a directed cycle in the subgraph of zero-marked arcs, the
/// exact liveness condition for marked graphs (live iff no such cycle).
/// Returns the cycle as a sequence of arc indices, empty when acyclic.
std::vector<size_t> findUnmarkedCycle(unsigned NumParts,
                                      const std::vector<Arc> &Arcs) {
  std::vector<std::vector<size_t>> Out(NumParts);
  for (size_t I = 0; I < Arcs.size(); ++I)
    if (Arcs[I].Marking <= 0)
      Out[Arcs[I].From].push_back(I);
  // Iterative DFS; Color: 0 unseen, 1 on stack, 2 done. PathArc[p] is
  // the arc that discovered p, for cycle reconstruction.
  std::vector<int> Color(NumParts, 0);
  std::vector<size_t> PathArc(NumParts, SIZE_MAX);
  for (unsigned Root = 0; Root < NumParts; ++Root) {
    if (Color[Root])
      continue;
    std::vector<std::pair<unsigned, size_t>> Stack{{Root, 0}};
    Color[Root] = 1;
    while (!Stack.empty()) {
      auto &[P, Next] = Stack.back();
      if (Next < Out[P].size()) {
        size_t AI = Out[P][Next++];
        unsigned Q = Arcs[AI].To;
        if (Color[Q] == 1) {
          // Back edge: walk PathArc from P back to Q.
          std::vector<size_t> Cycle{AI};
          for (unsigned Cur = P; Cur != Q; Cur = Arcs[PathArc[Cur]].From)
            Cycle.push_back(PathArc[Cur]);
          std::reverse(Cycle.begin(), Cycle.end());
          return Cycle;
        }
        if (Color[Q] == 0) {
          Color[Q] = 1;
          PathArc[Q] = AI;
          Stack.push_back({Q, 0});
        }
      } else {
        Color[P] = 2;
        Stack.pop_back();
      }
    }
  }
  return {};
}

bool isPow2(int64_t V) { return V > 0 && (V & (V - 1)) == 0; }

} // namespace

PlanCertificate verify::certifyPlan(const graph::StreamGraph &G,
                                    const schedule::Schedule &S,
                                    const parallel::PartitionPlan &Plan,
                                    DiagnosticEngine &Diags,
                                    const CompilerLimits &Limits,
                                    StatsRegistry *Stats,
                                    RemarkEmitter *Remarks) {
  PlanCertificate Cert;
  auto Reject = [&](SourceRange Range, const std::string &Msg) {
    Cert.Errors.push_back(Msg);
    Diags.error(Range, Msg);
  };
  auto RejectGlobal = [&](const std::string &Msg) {
    Cert.Errors.push_back(Msg);
    Diags.error(SourceLoc(1, 1), Msg);
  };

  // --- Premises: the plan structure the marked-graph model rests on.
  size_t PremiseErrors = Cert.Errors.size();
  if (Plan.NumPartitions < 1 ||
      Plan.Members.size() != Plan.NumPartitions) {
    RejectGlobal("plan certification: Members/NumPartitions mismatch");
  } else {
    size_t MemberCount = 0;
    for (unsigned P = 0; P < Plan.NumPartitions; ++P)
      for (const graph::Node *N : Plan.Members[P]) {
        ++MemberCount;
        auto It = Plan.PartitionOf.find(N);
        if (It == Plan.PartitionOf.end() || It->second != P)
          RejectGlobal("plan certification: node '" + N->getName() +
                       "' placed inconsistently with partition " +
                       std::to_string(P));
      }
    for (const graph::Node *N : S.Order)
      if (!Plan.PartitionOf.count(N))
        RejectGlobal("plan certification: scheduled node '" +
                     N->getName() + "' has no partition");
    if (MemberCount != S.Order.size())
      RejectGlobal("plan certification: placement covers " +
                   std::to_string(MemberCount) + " node(s), schedule has " +
                   std::to_string(S.Order.size()));
  }
  if (Plan.BatchIters < 1)
    RejectGlobal("plan certification: batching factor " +
                 std::to_string(Plan.BatchIters) + " is not positive");

  // Every cross-partition channel must be a cut edge, exactly once,
  // pointing forward along the pipeline, and never a feedback edge; the
  // recorded traffic must satisfy the SDF balance equation.
  for (const auto &Ch : G.channels()) {
    auto SrcIt = Plan.PartitionOf.find(Ch->getSrc());
    auto DstIt = Plan.PartitionOf.find(Ch->getDst());
    if (SrcIt == Plan.PartitionOf.end() || DstIt == Plan.PartitionOf.end())
      continue; // Already rejected above.
    unsigned SrcPart = SrcIt->second, DstPart = DstIt->second;
    const parallel::CutEdge *E = Plan.findCut(Ch.get());
    if (SrcPart == DstPart) {
      if (E)
        Reject(lower::channelRange(Ch.get()),
               "plan certification: intra-partition channel " +
                   edgeName(Ch.get()) + " recorded as a cut edge");
      continue;
    }
    if (!E) {
      Reject(lower::channelRange(Ch.get()),
             "plan certification: cross-partition channel " +
                 edgeName(Ch.get()) + " (partition " +
                 std::to_string(SrcPart) + " -> " +
                 std::to_string(DstPart) + ") is not a cut edge");
      continue;
    }
    if (E->SrcPartition != SrcPart || E->DstPartition != DstPart)
      Reject(lower::channelRange(Ch.get()),
             "plan certification: cut edge " + edgeName(Ch.get()) +
                 " records partitions " +
                 std::to_string(E->SrcPartition) + " -> " +
                 std::to_string(E->DstPartition) +
                 ", placement says " + std::to_string(SrcPart) + " -> " +
                 std::to_string(DstPart));
    if (SrcPart > DstPart)
      Reject(lower::channelRange(Ch.get()),
             "plan certification: cut edge " + edgeName(Ch.get()) +
                 " flows against the pipeline order (partition " +
                 std::to_string(SrcPart) + " -> " +
                 std::to_string(DstPart) + ")");
    if (Ch->isFeedback())
      Reject(lower::channelRange(Ch.get()),
             "plan certification: feedback channel " + edgeName(Ch.get()) +
                 " crosses a partition boundary");
    int64_t SrcTokens = Ch->srcRate() * S.repsOf(Ch->getSrc());
    int64_t DstTokens = Ch->dstRate() * S.repsOf(Ch->getDst());
    if (SrcTokens != DstTokens || E->TokensPerIter != SrcTokens)
      Reject(lower::channelRange(Ch.get()),
             "plan certification: cut edge " + edgeName(Ch.get()) +
                 " violates the balance equation (produces " +
                 std::to_string(SrcTokens) + ", consumes " +
                 std::to_string(DstTokens) + ", plan records " +
                 std::to_string(E->TokensPerIter) + ")");
  }
  for (const parallel::CutEdge &E : Plan.CutEdges)
    if (!E.Ch || !isPow2(E.BufferSlots))
      Reject(E.Ch ? lower::channelRange(E.Ch) : SourceRange(SourceLoc(1, 1)),
             "plan certification: cut-edge ring capacity " +
                 std::to_string(E.BufferSlots) +
                 " is not a positive power of two");
  Cert.Consistent = Cert.Errors.size() == PremiseErrors;

  // --- Deadlock-freedom: marked-graph liveness over slab tickets.
  // Liveness theorem (Commoner): a marked graph is deadlock-free iff
  // every directed cycle carries positive total marking, iff the
  // zero-marked arc subgraph is acyclic. Data arcs carry no initial
  // marking (nothing is produced before the first slab); credit arcs
  // carry SlabCapacity. The per-partition self-loop (slab s before
  // s+1) always carries the worker's single control token and cannot
  // participate in an unmarked cycle, so it is omitted.
  std::vector<Arc> Arcs;
  for (const parallel::CutEdge &E : Plan.CutEdges) {
    Arcs.push_back({E.SrcPartition, E.DstPartition, 0, E.Ch, false});
    Arcs.push_back({E.DstPartition, E.SrcPartition, E.SlabCapacity, E.Ch,
                    true});
  }
  Cert.ArcsChecked = static_cast<unsigned>(Arcs.size());
  Cert.CyclesChecked = static_cast<unsigned>(Plan.CutEdges.size());
  if (Cert.Consistent) {
    std::vector<size_t> Cycle =
        findUnmarkedCycle(Plan.NumPartitions, Arcs);
    if (Cycle.empty()) {
      Cert.DeadlockFree = true;
    } else {
      // Anchor the diagnostic at the first credit arc of the cycle (the
      // arc whose window the user can widen), falling back to the first
      // arc's channel.
      const Arc *Anchor = &Arcs[Cycle.front()];
      std::ostringstream OS;
      OS << "parallel plan is not deadlock-free: cycle with no initial "
            "marking: ";
      for (size_t I = 0; I < Cycle.size(); ++I) {
        if (I)
          OS << "; ";
        OS << arcLabel(Arcs[Cycle[I]]);
        if (Arcs[Cycle[I]].Credit)
          Anchor = &Arcs[Cycle[I]];
      }
      OS << " — every cycle of the slab marked graph must carry at "
            "least one token; raise --parallel-slab so each credit "
            "window is positive";
      Reject(lower::channelRange(Anchor->Ch), OS.str());
    }
  }

  // --- Capacity: bound the worst-case ring occupancy with interval
  // arithmetic (saturating, so hostile flag values cannot overflow the
  // certifier itself) and check the chosen power-of-two capacity covers
  // it. The steady-state bound is carry + (SlabCapacity + 2) in-flight
  // slabs of BatchIters iterations (docs/PARALLEL.md §4); the
  // schedule-simulation peak covers the init transient.
  schedule::SimResult Sim = schedule::simulateSchedule(G, S, 1);
  bool CapacityOk = Cert.Consistent;
  if (!Sim.Ok && Cert.Consistent && !Plan.CutEdges.empty()) {
    RejectGlobal("plan certification: schedule simulation failed: " +
                 Sim.Error);
    CapacityOk = false;
  }
  if (CapacityOk)
    for (const parallel::CutEdge &E : Plan.CutEdges) {
      int64_t Carry = S.occupancyOf(E.Ch);
      int64_t Peak = Sim.PeakOccupancy.count(E.Ch)
                         ? Sim.PeakOccupancy.at(E.Ch)
                         : 0;
      // Occupancy interval: [0, Carry] steady carry plus
      // [0, SlabCapacity + 2] slabs in flight, each of
      // BatchIters * TokensPerIter tokens. A non-positive credit
      // window already failed the deadlock check; clamp it here so
      // the capacity pass reasons over a well-formed interval
      // instead of piling secondary errors onto the same plan.
      IntRange Window(
          0, std::max<int64_t>(0, analysis::satAdd(E.SlabCapacity, 2)));
      IntRange PerSlab = analysis::transferBinary(
          lir::BinOp::Mul, IntRange(Plan.BatchIters, Plan.BatchIters),
          IntRange(E.TokensPerIter, E.TokensPerIter));
      IntRange InFlight =
          analysis::transferBinary(lir::BinOp::Mul, Window, PerSlab);
      IntRange Occ = analysis::transferBinary(
          lir::BinOp::Add, IntRange(0, Carry), InFlight);
      if (!Occ.hasFiniteHi() || Occ.Hi == IntRange::PosInf) {
        Reject(lower::channelRange(E.Ch),
               "plan certification: occupancy bound for ring " +
                   edgeName(E.Ch) +
                   " overflows (--parallel-slab/--parallel-batch too "
                   "large)");
        CapacityOk = false;
        continue;
      }
      int64_t Bound = std::max<int64_t>({Occ.Hi, Peak, 1});
      Cert.MaxOccupancyBound = std::max(Cert.MaxOccupancyBound, Bound);
      if (E.BufferSlots < Bound) {
        std::ostringstream OS;
        OS << "plan certification: ring for " << edgeName(E.Ch)
           << " holds " << E.BufferSlots << " token(s) but the batched "
           << "steady state needs up to " << Bound
           << " (carry " << Carry << " + (" << E.SlabCapacity
           << " + 2 slabs) x " << Plan.BatchIters << " iteration(s) x "
           << E.TokensPerIter << " token(s), init peak " << Peak << ")";
        Reject(lower::channelRange(E.Ch), OS.str());
        CapacityOk = false;
        continue;
      }
      int64_t Tight = static_cast<int64_t>(
          parallel::spscPow2Ceil(static_cast<uint64_t>(Bound)));
      if (E.BufferSlots >= 2 * Tight) {
        ++Cert.OversizedRings;
        if (Remarks) {
          std::ostringstream OS;
          OS << "ring for " << edgeName(E.Ch) << " is sized "
             << E.BufferSlots << " token(s); " << Tight
             << " certified sufficient for the batched steady state";
          Remarks->missed("verify-plan", "ShrinkCapacity", OS.str(),
                          lower::channelRange(E.Ch));
        }
      }
    }
  Cert.CapacitySufficient = CapacityOk;

  if (Stats) {
    StatsScope SS(Stats, "verify.plan");
    SS.add("consistent", Cert.Consistent ? 1 : 0);
    SS.add("deadlock-free", Cert.DeadlockFree ? 1 : 0);
    SS.add("capacity-certified", Cert.CapacitySufficient ? 1 : 0);
    SS.add("certified", Cert.ok() ? 1 : 0);
    SS.add("cut-edges", Plan.CutEdges.size());
    SS.add("arcs-checked", Cert.ArcsChecked);
    SS.add("cycles-checked", Cert.CyclesChecked);
    SS.add("oversized-rings", Cert.OversizedRings);
    SS.add("max-ring-bound",
           static_cast<uint64_t>(Cert.MaxOccupancyBound));
  }

  if (Cert.ok() && Remarks) {
    std::ostringstream OS;
    OS << "plan certified: " << Plan.NumPartitions << " partition(s), "
       << Plan.CutEdges.size() << " cut edge(s), batch "
       << Plan.BatchIters << "; every slab cycle carries positive "
       << "marking and every ring covers its " << Cert.MaxOccupancyBound
       << "-token occupancy bound";
    Remarks->passed("verify-plan", "PlanCertified", OS.str());
  }
  (void)Limits;
  return Cert;
}
