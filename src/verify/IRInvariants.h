//===--- IRInvariants.h - Structural IR invariants -------------*- C++ -*-===//
//
// Module-level invariants beyond lir::verifyModule's SSA/CFG checks,
// run at the driver's verify stages and (with --verify-each) between
// every optimization pass so the first pass that breaks one is named:
//
//  * Rate consistency: along every entry-to-exit path of an acyclic
//    steady/init function, the number of executed input/output
//    instructions is the same — and, when the schedule is available,
//    matches the declared SDF rates (inputPerSteady/outputPerSteady).
//    Optimizations may move, fold or renumber everything else, but the
//    external I/O volume of a steady iteration is the program's
//    contract and must survive every pass.
//
//  * Token liveness: every load of a LiveToken global (the values
//    LaminarIR carries across steady iterations) is dominated by an
//    initialization — a static initializer, an @init store, or an
//    earlier store on every path — checked against StateInitAnalysis.
//
// Functions with cyclic control flow (FIFO-mode work loops) get the
// per-path balance check skipped; the counts are not statically
// path-invariant there.
//
//===----------------------------------------------------------------------===//

#ifndef LAMINAR_VERIFY_IRINVARIANTS_H
#define LAMINAR_VERIFY_IRINVARIANTS_H

#include "graph/StreamGraph.h"
#include "lir/Module.h"
#include "parallel/Partitioner.h"
#include "schedule/Schedule.h"
#include <optional>
#include <string>
#include <vector>

namespace laminar {
namespace verify {

/// Compilation context the invariants are checked against; every field
/// is optional — with none set only the context-free invariants run.
struct InvariantContext {
  const graph::StreamGraph *G = nullptr;
  const schedule::Schedule *S = nullptr;
  const parallel::PartitionPlan *Plan = nullptr;
};

/// Statically-balanced I/O counts of \p F: the number of input and
/// output instructions executed along any entry-to-exit path. nullopt
/// when the CFG is cyclic (not statically path-invariant) or when
/// paths disagree (which checkIRInvariants reports as a violation).
struct IOSignature {
  int64_t Inputs = 0;
  int64_t Outputs = 0;
  bool Balanced = false; ///< All paths agree on both counts.
  bool Acyclic = false;  ///< Counts are meaningful at all.
};
IOSignature ioSignature(const lir::Function &F);

/// Checks every invariant; returns human-readable violations (empty =
/// certified). Cheap enough to run per pass under --verify-each.
std::vector<std::string> checkIRInvariants(const lir::Module &M,
                                           const InvariantContext &Ctx);

} // namespace verify
} // namespace laminar

#endif // LAMINAR_VERIFY_IRINVARIANTS_H
