//===--- ProtocolCheck.cpp ------------------------------------------------===//

#include "verify/ProtocolCheck.h"
#include "parallel/ParallelLowering.h"
#include "support/Casting.h"
#include <map>
#include <set>
#include <sstream>

using namespace laminar;
using namespace laminar::verify;
using namespace laminar::lir;

namespace {

/// Partition executing a function, by name: -1 for @init (ordered
/// before every worker by pthread_create), -2 for anything unknown.
int partitionOfFunction(const std::string &Name,
                        const parallel::PartitionPlan &Plan) {
  if (Name == "init")
    return -1;
  for (unsigned W = 0; W < Plan.NumPartitions; ++W) {
    if (Name == parallel::steadyFunctionName(W))
      return static_cast<int>(W);
    if (Plan.BatchIters > 1 &&
        Name == parallel::steadyBatchFunctionName(W, Plan.BatchIters))
      return static_cast<int>(W);
  }
  return -2;
}

struct GlobalAccess {
  std::set<unsigned> Loaders;
  std::set<unsigned> Storers;
  std::set<unsigned> all() const {
    std::set<unsigned> A = Loaders;
    A.insert(Storers.begin(), Storers.end());
    return A;
  }
};

std::string partsOf(const std::set<unsigned> &S) {
  std::ostringstream OS;
  bool First = true;
  for (unsigned P : S) {
    if (!First)
      OS << ", ";
    OS << P;
    First = false;
  }
  return OS.str();
}

} // namespace

std::vector<std::string>
verify::checkPartitionIsolation(const Module &M,
                                const parallel::PartitionPlan &Plan) {
  std::vector<std::string> V;

  // Which partitions load/store each global, @init excluded (it runs
  // before the workers start; pthread_create orders it against all of
  // them).
  std::map<const GlobalVar *, GlobalAccess> Access;
  for (const auto &F : M.functions()) {
    int Part = partitionOfFunction(F->getName(), Plan);
    if (Part < 0)
      continue;
    for (const auto &BB : F->blocks())
      for (const auto &I : BB->instructions()) {
        if (const auto *L = dyn_cast<LoadInst>(I.get()))
          Access[L->getGlobal()].Loaders.insert(
              static_cast<unsigned>(Part));
        else if (const auto *S = dyn_cast<StoreInst>(I.get()))
          Access[S->getGlobal()].Storers.insert(
              static_cast<unsigned>(Part));
      }
  }

  // Ring globals are named "ch<id>.buf|head|tail"; map each back to
  // its cut edge (non-cut rings are partition-private and fall under
  // the single-partition rule).
  auto cutForGlobal =
      [&](const GlobalVar *G) -> const parallel::CutEdge * {
    const std::string &Name = G->getName();
    for (const parallel::CutEdge &E : Plan.CutEdges) {
      std::string Prefix = "ch" + std::to_string(E.Ch->getId()) + ".";
      if (Name.compare(0, Prefix.size(), Prefix) == 0)
        return &E;
    }
    return nullptr;
  };

  for (const auto &[G, A] : Access) {
    std::set<unsigned> Parts = A.all();
    if (Parts.size() <= 1)
      continue; // Partition-private: no cross-thread access at all.
    MemClass MC = G->getMemClass();
    if (!isCommunication(MC) || MC == MemClass::LiveToken) {
      V.push_back("global '" + G->getName() + "' (" + memClassName(MC) +
                  ") is accessed by partitions " + partsOf(Parts) +
                  " with no ordering handshake");
      continue;
    }
    const parallel::CutEdge *E = cutForGlobal(G);
    if (!E) {
      V.push_back("channel global '" + G->getName() +
                  "' is shared by partitions " + partsOf(Parts) +
                  " but belongs to no cut edge");
      continue;
    }
    // Every access must come from the cut's two endpoints — only those
    // are ordered by the edge's slab handshake.
    for (unsigned P : Parts)
      if (P != E->SrcPartition && P != E->DstPartition)
        V.push_back("channel global '" + G->getName() +
                    "' of cut edge partition " +
                    std::to_string(E->SrcPartition) + " -> " +
                    std::to_string(E->DstPartition) +
                    " is accessed by unrelated partition " +
                    std::to_string(P));
    // The buffer itself must stay SPSC: producer writes, consumer
    // reads. (Cursors may be read by either side; the handshake orders
    // them at slab granularity.)
    if (MC == MemClass::ChannelBuf) {
      for (unsigned P : A.Storers)
        if (P != E->SrcPartition)
          V.push_back("ring buffer '" + G->getName() +
                      "' is written by partition " + std::to_string(P) +
                      ", but the producer is partition " +
                      std::to_string(E->SrcPartition));
      for (unsigned P : A.Loaders)
        if (P != E->DstPartition)
          V.push_back("ring buffer '" + G->getName() +
                      "' is read by partition " + std::to_string(P) +
                      ", but the consumer is partition " +
                      std::to_string(E->DstPartition));
    }
  }
  return V;
}

std::vector<std::string>
verify::checkThreadedCProtocol(const std::string &C,
                               const parallel::PartitionPlan &Plan) {
  std::vector<std::string> V;

  // Fault path: cancel must be raised (release) before the report and
  // the exit, so a faulting worker never leaves its peers spinning.
  size_t Fault = C.find("static void lam_fault");
  if (Fault == std::string::npos) {
    V.push_back("emitted C has no lam_fault handler");
    return V;
  }
  size_t FaultEnd = C.find('}', Fault);
  size_t Cancel = C.find(
      "atomic_store_explicit(&lam_cancel, 1, memory_order_release)",
      Fault);
  size_t Report = C.find("fprintf(stderr, \"laminar-fault", Fault);
  size_t Exit = C.find("_Exit(LAM_EXIT_FAULT)", Fault);
  if (Cancel == std::string::npos || Cancel > FaultEnd)
    V.push_back("fault handler does not raise the cancel flag with a "
                "release store");
  else if (Report == std::string::npos || Exit == std::string::npos ||
           !(Cancel < Report && Report < Exit))
    V.push_back("fault handler ordering violated: expected "
                "cancel(release) -> report -> _Exit");

  // Per-worker protocol shape.
  for (unsigned W = 0; W < Plan.NumPartitions; ++W) {
    std::string Marker =
        "lam_worker_" + std::to_string(W) + "(void *arg)";
    size_t Begin = C.find(Marker);
    if (Begin == std::string::npos) {
      V.push_back("emitted C has no worker function for partition " +
                  std::to_string(W));
      continue;
    }
    size_t End = C.find("static void *lam_worker_", Begin + Marker.size());
    if (End == std::string::npos)
      End = C.find("int main", Begin);
    std::string Seg = C.substr(Begin, End - Begin);
    size_t Body = Seg.find("lam_" + parallel::steadyFunctionName(W) + "(");
    if (Body == std::string::npos) {
      V.push_back("worker " + std::to_string(W) +
                  " never calls its steady body");
      continue;
    }
    unsigned Gates = 0;
    for (size_t Q = 0; Q < Plan.CutEdges.size(); ++Q) {
      const parallel::CutEdge &E = Plan.CutEdges[Q];
      std::string QS = std::to_string(Q);
      if (E.DstPartition == W) {
        ++Gates;
        size_t Wait = Seg.find("atomic_load_explicit(&lam_pushed_" + QS +
                               ".v, memory_order_acquire)");
        size_t Publish =
            Seg.find("atomic_store_explicit(&lam_popped_" + QS +
                     ".v, s + 1, memory_order_release)");
        if (Wait == std::string::npos || Wait > Body)
          V.push_back("worker " + std::to_string(W) +
                      " consumes ring " + QS +
                      " without an acquire gate before the body");
        if (Publish == std::string::npos || Publish < Body)
          V.push_back("worker " + std::to_string(W) +
                      " does not release-publish consumption of ring " +
                      QS + " after the body");
      }
      if (E.SrcPartition == W) {
        ++Gates;
        size_t Wait = Seg.find("atomic_load_explicit(&lam_popped_" + QS +
                               ".v, memory_order_acquire)");
        size_t Publish =
            Seg.find("atomic_store_explicit(&lam_pushed_" + QS +
                     ".v, s + 1, memory_order_release)");
        if (Wait == std::string::npos || Wait < Body)
          V.push_back("worker " + std::to_string(W) +
                      " publishes ring " + QS +
                      " without honoring its credit window");
        if (Publish == std::string::npos || Publish < Wait)
          V.push_back("worker " + std::to_string(W) +
                      " must release-publish ring " + QS +
                      " only after the credit gate");
      }
    }
    // Every spin loop must poll cancel, or a fault elsewhere leaves
    // this worker spinning forever.
    unsigned Polls = 0;
    for (size_t P = Seg.find("atomic_load_explicit(&lam_cancel");
         P != std::string::npos;
         P = Seg.find("atomic_load_explicit(&lam_cancel", P + 1))
      ++Polls;
    if (Polls < Gates)
      V.push_back("worker " + std::to_string(W) + " has " +
                  std::to_string(Gates) + " slab gate(s) but only " +
                  std::to_string(Polls) + " cancel poll(s)");
  }
  return V;
}
