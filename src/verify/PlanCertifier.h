//===--- PlanCertifier.h - Static plan-safety certification ----*- C++ -*-===//
//
// Proves, per selected PartitionPlan, the properties docs/PARALLEL.md §7
// argues in prose: the slab-granular handoff protocol cannot deadlock
// and every cross-partition ring is large enough for the batched steady
// state. The model is the classic marked graph over partitions: each cut
// edge contributes a data arc (producer -> consumer, zero initial
// marking — a slab must be produced before it can be consumed) and a
// credit arc (consumer -> producer, marked with SlabCapacity — the
// producer's run-ahead window). A marked graph is live iff every
// directed cycle carries positive total marking, equivalently iff the
// subgraph of zero-marked arcs is acyclic; the certifier runs that exact
// check and, on failure, names the unmarked cycle in a located
// diagnostic anchored at one of its channels.
//
// Runs after PlanSelection and before lowering, so an uncertifiable
// plan (hostile --parallel-slab/--parallel-batch values) is rejected at
// compile time instead of hanging until the --deadline-ms watchdog.
//
//===----------------------------------------------------------------------===//

#ifndef LAMINAR_VERIFY_PLANCERTIFIER_H
#define LAMINAR_VERIFY_PLANCERTIFIER_H

#include "graph/StreamGraph.h"
#include "parallel/Partitioner.h"
#include "schedule/Schedule.h"
#include "support/Diagnostics.h"
#include "support/Limits.h"
#include "support/Remarks.h"
#include "support/Statistics.h"
#include <string>
#include <vector>

namespace laminar {
namespace verify {

/// The machine-checked certificate for one PartitionPlan. All three
/// verdicts must hold for the plan to be safe; Errors carries the
/// human-readable findings (each also emitted as a located diagnostic).
struct PlanCertificate {
  /// The premises the marked-graph model rests on: PartitionOf is a
  /// total map consistent with Members, every cross-partition channel
  /// is a cut edge (exactly once, forward, never feedback), the
  /// recorded TokensPerIter match the balance equations, and
  /// BatchIters/BufferSlots are well-formed.
  bool Consistent = false;
  /// Every cycle of the marked graph carries positive initial marking.
  bool DeadlockFree = false;
  /// Every cut-edge ring provably holds the interval-bounded worst-case
  /// occupancy of the batched steady state.
  bool CapacitySufficient = false;

  /// Arcs of the marked graph examined (2 per cut edge).
  unsigned ArcsChecked = 0;
  /// Elementary data/credit cycles certified (1 per cut edge).
  unsigned CyclesChecked = 0;
  /// Rings at least one power of two larger than the certified bound
  /// (reported through the ShrinkCapacity missed-optimization remark).
  unsigned OversizedRings = 0;
  /// Largest certified occupancy bound across all cut edges (tokens).
  int64_t MaxOccupancyBound = 0;

  std::vector<std::string> Errors;

  bool ok() const { return Consistent && DeadlockFree && CapacitySufficient; }
};

/// Certifies \p Plan against the graph and schedule it was derived
/// from. Emits one located error diagnostic per finding, records
/// `verify.plan.*` stats, and reports the certificate (PlanCertified)
/// or the oversize findings (ShrinkCapacity) through \p Remarks.
PlanCertificate certifyPlan(const graph::StreamGraph &G,
                            const schedule::Schedule &S,
                            const parallel::PartitionPlan &Plan,
                            DiagnosticEngine &Diags,
                            const CompilerLimits &Limits,
                            StatsRegistry *Stats = nullptr,
                            RemarkEmitter *Remarks = nullptr);

} // namespace verify
} // namespace laminar

#endif // LAMINAR_VERIFY_PLANCERTIFIER_H
