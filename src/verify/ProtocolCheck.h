//===--- ProtocolCheck.h - Static race/protocol certification --*- C++ -*-===//
//
// The happens-before argument for the parallel runtime rests on two
// premises the compiler can discharge statically:
//
//  1. Partition isolation (IR level): every global a parallel module's
//     steady functions touch is either private to one partition, or the
//     ring storage of a declared cut edge — written only by the
//     producer partition, read only by the consumer — so every
//     cross-partition token access is ordered by the ring's
//     acquire/release slab handshake. checkPartitionIsolation walks
//     the module's loads/stores and proves exactly that.
//
//  2. Protocol shape (emitted C): the threaded-C worker loop must gate
//     consumption on an acquire of the producer's ticket, publish with
//     a release, poll the cancel flag inside every spin, and the fault
//     path must raise cancel (release) before exiting so no peer spins
//     forever. checkThreadedCProtocol structurally verifies the
//     emitted text against the plan.
//
//===----------------------------------------------------------------------===//

#ifndef LAMINAR_VERIFY_PROTOCOLCHECK_H
#define LAMINAR_VERIFY_PROTOCOLCHECK_H

#include "lir/Module.h"
#include "parallel/Partitioner.h"
#include <string>
#include <vector>

namespace laminar {
namespace verify {

/// Proves the happens-before premise over the lowered parallel module:
/// no state or live token is shared between partitions, and channel
/// storage crossing partitions belongs to a cut edge with the producer
/// storing and the consumer loading. Returns violations (empty = the
/// slab handshake orders every cross-partition access).
std::vector<std::string>
checkPartitionIsolation(const lir::Module &M,
                        const parallel::PartitionPlan &Plan);

/// Structurally verifies emitted threaded C (codegen::emitC with a
/// plan): per cut edge one acquire-gated consumer wait and one
/// release publish on each of the pushed/popped tickets, a cancel poll
/// inside every spin loop, and the fault handler's
/// cancel(release) -> report -> _Exit ordering.
std::vector<std::string>
checkThreadedCProtocol(const std::string &CSource,
                       const parallel::PartitionPlan &Plan);

} // namespace verify
} // namespace laminar

#endif // LAMINAR_VERIFY_PROTOCOLCHECK_H
