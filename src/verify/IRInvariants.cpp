//===--- IRInvariants.cpp -------------------------------------------------===//

#include "verify/IRInvariants.h"
#include "analysis/StateAnalysis.h"
#include "parallel/ParallelLowering.h"
#include "support/Casting.h"
#include <algorithm>
#include <unordered_map>
#include <unordered_set>

using namespace laminar;
using namespace laminar::verify;
using namespace laminar::lir;

namespace {

struct BlockIO {
  int64_t Inputs = 0;
  int64_t Outputs = 0;
};

/// Reverse-postorder over the blocks reachable from entry; Cyclic is
/// set when a back edge is found (the DP below is then meaningless).
std::vector<const BasicBlock *> reachableRPO(const Function &F,
                                             bool &Cyclic) {
  Cyclic = false;
  std::vector<const BasicBlock *> Post;
  if (F.blocks().empty())
    return Post;
  std::unordered_map<const BasicBlock *, int> Color; // 1 open, 2 done
  struct Frame {
    const BasicBlock *BB;
    std::vector<BasicBlock *> Succs;
    size_t Next = 0;
  };
  std::vector<Frame> Stack;
  const BasicBlock *Entry = F.blocks().front().get();
  Stack.push_back({Entry, Entry->successors()});
  Color[Entry] = 1;
  while (!Stack.empty()) {
    Frame &Fr = Stack.back();
    if (Fr.Next < Fr.Succs.size()) {
      const BasicBlock *S = Fr.Succs[Fr.Next++];
      int &C = Color[S];
      if (C == 1)
        Cyclic = true;
      else if (C == 0) {
        C = 1;
        Stack.push_back({S, S->successors()});
      }
    } else {
      Color[Fr.BB] = 2;
      Post.push_back(Fr.BB);
      Stack.pop_back();
    }
  }
  std::reverse(Post.begin(), Post.end());
  return Post;
}

BlockIO countIO(const BasicBlock &BB) {
  BlockIO IO;
  for (const auto &I : BB.instructions()) {
    if (isa<InputInst>(I.get()))
      ++IO.Inputs;
    else if (isa<OutputInst>(I.get()))
      ++IO.Outputs;
  }
  return IO;
}

} // namespace

IOSignature verify::ioSignature(const Function &F) {
  IOSignature Sig;
  bool Cyclic = false;
  std::vector<const BasicBlock *> RPO = reachableRPO(F, Cyclic);
  if (Cyclic || RPO.empty())
    return Sig;
  Sig.Acyclic = true;
  // Min/max executed I/O from entry to each block's end; a mismatch at
  // any exit means some path does more external I/O than another.
  struct Range {
    int64_t MinIn, MaxIn, MinOut, MaxOut;
  };
  std::unordered_map<const BasicBlock *, Range> At;
  int64_t ExitMinIn = -1, ExitMaxIn = -1, ExitMinOut = -1, ExitMaxOut = -1;
  for (const BasicBlock *BB : RPO) {
    BlockIO IO = countIO(*BB);
    Range R{0, 0, 0, 0};
    bool First = true;
    for (const BasicBlock *P : BB->predecessors()) {
      auto It = At.find(P);
      if (It == At.end())
        continue; // Unreachable predecessor: contributes no path.
      if (First) {
        R = It->second;
        First = false;
      } else {
        R.MinIn = std::min(R.MinIn, It->second.MinIn);
        R.MaxIn = std::max(R.MaxIn, It->second.MaxIn);
        R.MinOut = std::min(R.MinOut, It->second.MinOut);
        R.MaxOut = std::max(R.MaxOut, It->second.MaxOut);
      }
    }
    R.MinIn += IO.Inputs;
    R.MaxIn += IO.Inputs;
    R.MinOut += IO.Outputs;
    R.MaxOut += IO.Outputs;
    At[BB] = R;
    if (BB->successors().empty()) {
      if (ExitMinIn < 0) {
        ExitMinIn = R.MinIn;
        ExitMaxIn = R.MaxIn;
        ExitMinOut = R.MinOut;
        ExitMaxOut = R.MaxOut;
      } else {
        ExitMinIn = std::min(ExitMinIn, R.MinIn);
        ExitMaxIn = std::max(ExitMaxIn, R.MaxIn);
        ExitMinOut = std::min(ExitMinOut, R.MinOut);
        ExitMaxOut = std::max(ExitMaxOut, R.MaxOut);
      }
    }
  }
  if (ExitMinIn < 0)
    return Sig; // No exit block: nothing to certify.
  Sig.Balanced = ExitMinIn == ExitMaxIn && ExitMinOut == ExitMaxOut;
  Sig.Inputs = ExitMaxIn;
  Sig.Outputs = ExitMaxOut;
  return Sig;
}

std::vector<std::string>
verify::checkIRInvariants(const Module &M, const InvariantContext &Ctx) {
  std::vector<std::string> V;

  // --- Rate consistency.
  // Expected external I/O per function, derivable only with the graph
  // and schedule in hand. -1 = no expectation for that count.
  auto expectFor = [&](const std::string &Name) -> std::pair<int64_t,
                                                             int64_t> {
    if (!Ctx.G || !Ctx.S)
      return {-1, -1};
    int64_t InPerIter = Ctx.S->inputPerSteady(*Ctx.G);
    int64_t OutPerIter = Ctx.S->outputPerSteady(*Ctx.G);
    if (!Ctx.Plan) {
      if (Name == "steady")
        return {InPerIter, OutPerIter};
      if (Name == "init")
        return {Ctx.S->inputForInit(*Ctx.G), -1};
      return {-1, -1};
    }
    // Parallel module: the source's partition does all the reading, the
    // sink's all the writing; batched bodies scale by BatchIters.
    const graph::Node *Src = Ctx.G->getSource();
    const graph::Node *Snk = Ctx.G->getSink();
    auto PartOf = [&](const graph::Node *N) -> int64_t {
      if (!N)
        return -1;
      auto It = Ctx.Plan->PartitionOf.find(N);
      return It == Ctx.Plan->PartitionOf.end() ? -1
                                               : static_cast<int64_t>(
                                                     It->second);
    };
    for (unsigned W = 0; W < Ctx.Plan->NumPartitions; ++W) {
      int64_t In = PartOf(Src) == static_cast<int64_t>(W) ? InPerIter : 0;
      int64_t Out =
          PartOf(Snk) == static_cast<int64_t>(W) ? OutPerIter : 0;
      if (Name == parallel::steadyFunctionName(W))
        return {In, Out};
      if (Ctx.Plan->BatchIters > 1 &&
          Name ==
              parallel::steadyBatchFunctionName(W, Ctx.Plan->BatchIters))
        return {In * Ctx.Plan->BatchIters, Out * Ctx.Plan->BatchIters};
    }
    if (Name == "init")
      return {Ctx.S->inputForInit(*Ctx.G), -1};
    return {-1, -1};
  };

  for (const auto &F : M.functions()) {
    IOSignature Sig = ioSignature(*F);
    if (!Sig.Acyclic)
      continue; // FIFO work loops: counts are not path-invariant.
    if (!Sig.Balanced) {
      V.push_back("function '" + F->getName() +
                  "' performs a different number of input/output "
                  "instructions along different paths");
      continue;
    }
    auto [ExpIn, ExpOut] = expectFor(F->getName());
    if (ExpIn >= 0 && Sig.Inputs != ExpIn)
      V.push_back("function '" + F->getName() + "' executes " +
                  std::to_string(Sig.Inputs) +
                  " input instruction(s) per call, schedule declares " +
                  std::to_string(ExpIn));
    if (ExpOut >= 0 && Sig.Outputs != ExpOut)
      V.push_back("function '" + F->getName() + "' executes " +
                  std::to_string(Sig.Outputs) +
                  " output instruction(s) per call, schedule declares " +
                  std::to_string(ExpOut));
  }

  // --- Token liveness: no LiveToken global is read before something
  // certainly wrote it (static init, @init, or an earlier store on
  // every path — StateInitAnalysis chains the execution order).
  bool AnyLiveToken = false;
  for (const auto &G : M.globals())
    AnyLiveToken |= G->getMemClass() == MemClass::LiveToken;
  if (AnyLiveToken) {
    analysis::StateInitAnalysis Init(M);
    for (const auto &F : M.functions())
      for (const auto &BB : F->blocks()) {
        std::unordered_set<const GlobalVar *> StoredHere;
        for (const auto &I : BB->instructions()) {
          if (const auto *L = dyn_cast<LoadInst>(I.get())) {
            const GlobalVar *G = L->getGlobal();
            if (G->getMemClass() == MemClass::LiveToken &&
                !StoredHere.count(G) &&
                !Init.mustInitAtEntry(BB.get(), G))
              V.push_back("function '" + F->getName() + "' block '" +
                          BB->getName() + "' reads live token '" +
                          G->getName() +
                          "' before it is certainly initialized");
          } else if (const auto *St = dyn_cast<StoreInst>(I.get())) {
            StoredHere.insert(St->getGlobal());
          }
        }
      }
  }

  return V;
}
