//===--- ConstEval.h - Compile-time evaluation -----------------*- C++ -*-===//
//
// Evaluates expressions and statements of the surface language at
// compile time. Used for:
//  - elaborating composite bodies (executing add/split/join under for/if),
//  - evaluating I/O rates, array sizes and composite arguments,
//  - computing static trip counts when the Laminar lowering unrolls loops.
//
//===----------------------------------------------------------------------===//

#ifndef LAMINAR_FRONTEND_CONSTEVAL_H
#define LAMINAR_FRONTEND_CONSTEVAL_H

#include "frontend/AST.h"
#include "support/Diagnostics.h"
#include <functional>
#include <optional>
#include <unordered_map>

namespace laminar {

/// A compile-time scalar value.
struct ConstVal {
  ast::ScalarType Ty = ast::ScalarType::Void;
  int64_t I = 0;
  double F = 0;
  bool B = false;

  static ConstVal makeInt(int64_t V);
  static ConstVal makeFloat(double V);
  static ConstVal makeBool(bool V);

  // Total accessors: any value converts to any scalar type with
  // defined semantics (float->int truncates toward zero and saturates
  // out of range, truthiness for bool). No asserts — mistyped
  // expressions that reach compile-time evaluation must produce a
  // located diagnostic downstream, never a crash.
  double asFloat() const;
  int64_t asInt() const;
  bool asBool() const;
  ConstVal convertTo(ast::ScalarType To) const;
};

/// Binding of variable declarations to compile-time values.
class ConstEnv {
public:
  void set(const ast::VarDecl *D, ConstVal V) { Map[D] = V; }
  std::optional<ConstVal> get(const ast::VarDecl *D) const {
    auto It = Map.find(D);
    if (It == Map.end())
      return std::nullopt;
    return It->second;
  }
  void erase(const ast::VarDecl *D) { Map.erase(D); }

private:
  std::unordered_map<const ast::VarDecl *, ConstVal> Map;
};

class ConstEval {
public:
  /// Callback invoked for add/split/join statements during composite
  /// elaboration; returns false to abort.
  using GraphCallback = std::function<bool(const ast::Stmt *)>;

  ConstEval(DiagnosticEngine &Diags, ConstEnv &Env)
      : Diags(Diags), Env(Env) {}

  /// Evaluates \p E; returns nullopt when the expression is not a
  /// compile-time constant (no diagnostics are emitted). Assignments
  /// update the environment.
  std::optional<ConstVal> eval(const ast::Expr *E);

  /// Executes \p S (composite-body statement). Graph statements are
  /// dispatched to \p CB. Emits diagnostics and returns false on
  /// failure (non-constant control flow, step budget exhausted).
  bool exec(const ast::Stmt *S, const GraphCallback &CB);

private:
  std::optional<ConstVal> evalBinary(const ast::BinaryExpr *B);
  std::optional<ConstVal> evalCall(const ast::CallExpr *C);

  DiagnosticEngine &Diags;
  ConstEnv &Env;
  /// Guards against runaway elaboration loops.
  uint64_t StepBudget = 4u << 20;
};

} // namespace laminar

#endif // LAMINAR_FRONTEND_CONSTEVAL_H
