//===--- Parser.h - Recursive-descent parser -------------------*- C++ -*-===//

#ifndef LAMINAR_FRONTEND_PARSER_H
#define LAMINAR_FRONTEND_PARSER_H

#include "frontend/AST.h"
#include "frontend/Lexer.h"
#include <memory>

namespace laminar {

/// Parses a whole program. Errors are reported through \p Diags; the
/// returned Program contains the declarations that parsed successfully
/// (callers must check Diags.hasErrors() before using it).
std::unique_ptr<ast::Program> parseProgram(const std::string &Source,
                                           DiagnosticEngine &Diags);

} // namespace laminar

#endif // LAMINAR_FRONTEND_PARSER_H
