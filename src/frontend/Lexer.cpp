//===--- Lexer.cpp --------------------------------------------------------===//

#include "frontend/Lexer.h"
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <unordered_map>

using namespace laminar;

const char *laminar::tokKindName(TokKind K) {
  switch (K) {
  case TokKind::Eof:
    return "end of input";
  case TokKind::Identifier:
    return "identifier";
  case TokKind::IntLiteral:
    return "integer literal";
  case TokKind::FloatLiteral:
    return "float literal";
  case TokKind::KwVoid:
    return "'void'";
  case TokKind::KwInt:
    return "'int'";
  case TokKind::KwFloat:
    return "'float'";
  case TokKind::KwBoolean:
    return "'boolean'";
  case TokKind::KwFilter:
    return "'filter'";
  case TokKind::KwPipeline:
    return "'pipeline'";
  case TokKind::KwSplitjoin:
    return "'splitjoin'";
  case TokKind::KwFeedbackloop:
    return "'feedbackloop'";
  case TokKind::KwSplit:
    return "'split'";
  case TokKind::KwJoin:
    return "'join'";
  case TokKind::KwDuplicate:
    return "'duplicate'";
  case TokKind::KwRoundrobin:
    return "'roundrobin'";
  case TokKind::KwAdd:
    return "'add'";
  case TokKind::KwBody:
    return "'body'";
  case TokKind::KwLoop:
    return "'loop'";
  case TokKind::KwEnqueue:
    return "'enqueue'";
  case TokKind::KwWork:
    return "'work'";
  case TokKind::KwInit:
    return "'init'";
  case TokKind::KwPush:
    return "'push'";
  case TokKind::KwPop:
    return "'pop'";
  case TokKind::KwPeek:
    return "'peek'";
  case TokKind::KwIf:
    return "'if'";
  case TokKind::KwElse:
    return "'else'";
  case TokKind::KwFor:
    return "'for'";
  case TokKind::KwWhile:
    return "'while'";
  case TokKind::KwTrue:
    return "'true'";
  case TokKind::KwFalse:
    return "'false'";
  case TokKind::Arrow:
    return "'->'";
  case TokKind::LBrace:
    return "'{'";
  case TokKind::RBrace:
    return "'}'";
  case TokKind::LParen:
    return "'('";
  case TokKind::RParen:
    return "')'";
  case TokKind::LBracket:
    return "'['";
  case TokKind::RBracket:
    return "']'";
  case TokKind::Semi:
    return "';'";
  case TokKind::Comma:
    return "','";
  case TokKind::Assign:
    return "'='";
  case TokKind::PlusAssign:
    return "'+='";
  case TokKind::MinusAssign:
    return "'-='";
  case TokKind::StarAssign:
    return "'*='";
  case TokKind::SlashAssign:
    return "'/='";
  case TokKind::Plus:
    return "'+'";
  case TokKind::Minus:
    return "'-'";
  case TokKind::Star:
    return "'*'";
  case TokKind::Slash:
    return "'/'";
  case TokKind::Percent:
    return "'%'";
  case TokKind::Amp:
    return "'&'";
  case TokKind::Pipe:
    return "'|'";
  case TokKind::Caret:
    return "'^'";
  case TokKind::Tilde:
    return "'~'";
  case TokKind::Shl:
    return "'<<'";
  case TokKind::Shr:
    return "'>>'";
  case TokKind::AmpAmp:
    return "'&&'";
  case TokKind::PipePipe:
    return "'||'";
  case TokKind::Bang:
    return "'!'";
  case TokKind::EqEq:
    return "'=='";
  case TokKind::NotEq:
    return "'!='";
  case TokKind::Less:
    return "'<'";
  case TokKind::LessEq:
    return "'<='";
  case TokKind::Greater:
    return "'>'";
  case TokKind::GreaterEq:
    return "'>='";
  case TokKind::PlusPlus:
    return "'++'";
  case TokKind::MinusMinus:
    return "'--'";
  }
  return "?";
}

Lexer::Lexer(std::string Source, DiagnosticEngine &Diags)
    : Source(std::move(Source)), Diags(Diags) {}

char Lexer::peek(unsigned Ahead) const {
  return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
}

char Lexer::advance() {
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  return C;
}

bool Lexer::match(char C) {
  if (peek() != C)
    return false;
  advance();
  return true;
}

Token Lexer::make(TokKind K, SourceLoc Loc) const {
  Token T;
  T.Kind = K;
  T.Loc = Loc;
  return T;
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  do {
    Tokens.push_back(next());
  } while (!Tokens.back().is(TokKind::Eof));
  return Tokens;
}

Token Lexer::next() {
  for (;;)
    if (std::optional<Token> T = nextImpl())
      return *T;
}

std::optional<Token> Lexer::nextImpl() {
  // Skip whitespace and comments.
  for (;;) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (peek() != '\n' && peek() != '\0')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      SourceLoc Start = loc();
      advance();
      advance();
      while (!(peek() == '*' && peek(1) == '/')) {
        if (peek() == '\0') {
          Diags.error(Start, "unterminated block comment");
          return make(TokKind::Eof, loc());
        }
        advance();
      }
      advance();
      advance();
      continue;
    }
    break;
  }

  SourceLoc Start = loc();
  char C = peek();
  if (C == '\0')
    return make(TokKind::Eof, Start);
  if (std::isdigit(static_cast<unsigned char>(C)) ||
      (C == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))))
    return lexNumber(Start);
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
    return lexIdentifier(Start);

  advance();
  switch (C) {
  case '{':
    return make(TokKind::LBrace, Start);
  case '}':
    return make(TokKind::RBrace, Start);
  case '(':
    return make(TokKind::LParen, Start);
  case ')':
    return make(TokKind::RParen, Start);
  case '[':
    return make(TokKind::LBracket, Start);
  case ']':
    return make(TokKind::RBracket, Start);
  case ';':
    return make(TokKind::Semi, Start);
  case ',':
    return make(TokKind::Comma, Start);
  case '+':
    if (match('='))
      return make(TokKind::PlusAssign, Start);
    if (match('+'))
      return make(TokKind::PlusPlus, Start);
    return make(TokKind::Plus, Start);
  case '-':
    if (match('>'))
      return make(TokKind::Arrow, Start);
    if (match('='))
      return make(TokKind::MinusAssign, Start);
    if (match('-'))
      return make(TokKind::MinusMinus, Start);
    return make(TokKind::Minus, Start);
  case '*':
    return make(match('=') ? TokKind::StarAssign : TokKind::Star, Start);
  case '/':
    return make(match('=') ? TokKind::SlashAssign : TokKind::Slash, Start);
  case '%':
    return make(TokKind::Percent, Start);
  case '&':
    return make(match('&') ? TokKind::AmpAmp : TokKind::Amp, Start);
  case '|':
    return make(match('|') ? TokKind::PipePipe : TokKind::Pipe, Start);
  case '^':
    return make(TokKind::Caret, Start);
  case '~':
    return make(TokKind::Tilde, Start);
  case '!':
    return make(match('=') ? TokKind::NotEq : TokKind::Bang, Start);
  case '=':
    return make(match('=') ? TokKind::EqEq : TokKind::Assign, Start);
  case '<':
    if (match('<'))
      return make(TokKind::Shl, Start);
    return make(match('=') ? TokKind::LessEq : TokKind::Less, Start);
  case '>':
    if (match('>'))
      return make(TokKind::Shr, Start);
    return make(match('=') ? TokKind::GreaterEq : TokKind::Greater, Start);
  default: {
    std::string Msg = "unexpected character '";
    Msg += C;
    Msg += "'";
    Diags.error(Start, Msg);
    // Once the error limit trips, stop scanning rather than chewing
    // through the rest of a garbage buffer byte by byte.
    if (Diags.tooManyErrors())
      return make(TokKind::Eof, Start);
    return std::nullopt;
  }
  }
}

Token Lexer::lexNumber(SourceLoc Start) {
  std::string Text;
  bool IsFloat = false;
  while (std::isdigit(static_cast<unsigned char>(peek())))
    Text += advance();
  if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
    IsFloat = true;
    Text += advance();
    while (std::isdigit(static_cast<unsigned char>(peek())))
      Text += advance();
  } else if (peek() == '.' &&
             !std::isalpha(static_cast<unsigned char>(peek(1)))) {
    IsFloat = true;
    Text += advance();
  }
  if (peek() == 'e' || peek() == 'E') {
    char Sign = peek(1);
    if (std::isdigit(static_cast<unsigned char>(Sign)) ||
        ((Sign == '+' || Sign == '-') &&
         std::isdigit(static_cast<unsigned char>(peek(2))))) {
      IsFloat = true;
      Text += advance();
      if (peek() == '+' || peek() == '-')
        Text += advance();
      while (std::isdigit(static_cast<unsigned char>(peek())))
        Text += advance();
    }
  }
  Token T;
  T.Loc = Start;
  if (IsFloat) {
    T.Kind = TokKind::FloatLiteral;
    T.FloatValue = std::strtod(Text.c_str(), nullptr);
  } else {
    T.Kind = TokKind::IntLiteral;
    errno = 0;
    T.IntValue = std::strtoll(Text.c_str(), nullptr, 10);
    if (errno == ERANGE) {
      // strtoll saturates silently; a saturated weight or rate would
      // overflow downstream arithmetic, so reject at the source.
      Diags.error(SourceRange(
                      Start, SourceLoc(Start.Line,
                                       Start.Col +
                                           static_cast<unsigned>(Text.size()))),
                  "integer literal '" + Text + "' does not fit in 64 bits");
      T.IntValue = 0;
    }
  }
  return T;
}

Token Lexer::lexIdentifier(SourceLoc Start) {
  static const std::unordered_map<std::string, TokKind> Keywords = {
      {"void", TokKind::KwVoid},
      {"int", TokKind::KwInt},
      {"float", TokKind::KwFloat},
      {"boolean", TokKind::KwBoolean},
      {"filter", TokKind::KwFilter},
      {"pipeline", TokKind::KwPipeline},
      {"splitjoin", TokKind::KwSplitjoin},
      {"feedbackloop", TokKind::KwFeedbackloop},
      {"body", TokKind::KwBody},
      {"loop", TokKind::KwLoop},
      {"enqueue", TokKind::KwEnqueue},
      {"split", TokKind::KwSplit},
      {"join", TokKind::KwJoin},
      {"duplicate", TokKind::KwDuplicate},
      {"roundrobin", TokKind::KwRoundrobin},
      {"add", TokKind::KwAdd},
      {"work", TokKind::KwWork},
      {"init", TokKind::KwInit},
      {"push", TokKind::KwPush},
      {"pop", TokKind::KwPop},
      {"peek", TokKind::KwPeek},
      {"if", TokKind::KwIf},
      {"else", TokKind::KwElse},
      {"for", TokKind::KwFor},
      {"while", TokKind::KwWhile},
      {"true", TokKind::KwTrue},
      {"false", TokKind::KwFalse},
  };
  std::string Text;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
    Text += advance();
  Token T;
  T.Loc = Start;
  auto It = Keywords.find(Text);
  if (It != Keywords.end()) {
    T.Kind = It->second;
  } else {
    T.Kind = TokKind::Identifier;
    T.Text = std::move(Text);
  }
  return T;
}
