//===--- Sema.h - Semantic analysis ----------------------------*- C++ -*-===//

#ifndef LAMINAR_FRONTEND_SEMA_H
#define LAMINAR_FRONTEND_SEMA_H

#include "frontend/AST.h"
#include "support/Diagnostics.h"

namespace laminar {

/// Resolves names, checks types and validates statement contexts for a
/// parsed program. Annotates the AST in place (expression types, VarRef
/// declarations, builtin kinds). Returns false when errors were emitted.
bool analyzeProgram(ast::Program &P, DiagnosticEngine &Diags);

} // namespace laminar

#endif // LAMINAR_FRONTEND_SEMA_H
