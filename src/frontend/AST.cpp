//===--- AST.cpp ----------------------------------------------------------===//

#include "frontend/AST.h"

using namespace laminar;
using namespace laminar::ast;

const char *ast::scalarTypeName(ScalarType Ty) {
  switch (Ty) {
  case ScalarType::Void:
    return "void";
  case ScalarType::Int:
    return "int";
  case ScalarType::Float:
    return "float";
  case ScalarType::Bool:
    return "boolean";
  }
  return "?";
}

const char *ast::binaryOpSpelling(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::Div:
    return "/";
  case BinaryOp::Rem:
    return "%";
  case BinaryOp::BitAnd:
    return "&";
  case BinaryOp::BitOr:
    return "|";
  case BinaryOp::BitXor:
    return "^";
  case BinaryOp::Shl:
    return "<<";
  case BinaryOp::Shr:
    return ">>";
  case BinaryOp::LogAnd:
    return "&&";
  case BinaryOp::LogOr:
    return "||";
  case BinaryOp::EQ:
    return "==";
  case BinaryOp::NE:
    return "!=";
  case BinaryOp::LT:
    return "<";
  case BinaryOp::LE:
    return "<=";
  case BinaryOp::GT:
    return ">";
  case BinaryOp::GE:
    return ">=";
  }
  return "?";
}
