//===--- ConstEval.cpp ----------------------------------------------------===//

#include "frontend/ConstEval.h"
#include <cassert>
#include <cmath>
#include <limits>

// Two's-complement wrapping arithmetic, matching the interpreter and
// the emitted C (which compute through uint64_t). Plain signed
// operators here would be undefined behavior on overflow — reachable
// from source like `const int x = 9223372036854775807 + 1;`.
static int64_t wrapAdd(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) +
                              static_cast<uint64_t>(B));
}
static int64_t wrapSub(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) -
                              static_cast<uint64_t>(B));
}
static int64_t wrapMul(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) *
                              static_cast<uint64_t>(B));
}
static int64_t wrapNeg(int64_t A) {
  return static_cast<int64_t>(0 - static_cast<uint64_t>(A));
}
static int64_t wrapShl(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A)
                              << (static_cast<uint64_t>(B) & 63));
}
// INT64_MIN / -1 (and % -1) overflow: not a compile-time constant.
static bool divTraps(int64_t A, int64_t B) {
  return B == 0 || (A == std::numeric_limits<int64_t>::min() && B == -1);
}

using namespace laminar;
using namespace laminar::ast;

ConstVal ConstVal::makeInt(int64_t V) {
  ConstVal C;
  C.Ty = ScalarType::Int;
  C.I = V;
  return C;
}

ConstVal ConstVal::makeFloat(double V) {
  ConstVal C;
  C.Ty = ScalarType::Float;
  C.F = V;
  return C;
}

ConstVal ConstVal::makeBool(bool V) {
  ConstVal C;
  C.Ty = ScalarType::Bool;
  C.B = V;
  return C;
}

// The accessors and conversions below are total. Sema is the type
// gate; when a mistyped expression still reaches compile-time
// evaluation (hostile input, a sema gap), evaluation must produce a
// defined value or a located "not a compile-time constant" diagnostic
// downstream — never an assert or undefined behavior (the crash-free
// contract, PR 2).

/// Defined float-to-int truncation: saturates outside the exactly
/// representable range instead of the UB cast; NaN maps to 0.
static int64_t truncToInt(double F) {
  if (std::isnan(F))
    return 0;
  if (!(F >= -9.2e18))
    return std::numeric_limits<int64_t>::min();
  if (!(F <= 9.2e18))
    return std::numeric_limits<int64_t>::max();
  return static_cast<int64_t>(F);
}

double ConstVal::asFloat() const {
  if (Ty == ScalarType::Int)
    return static_cast<double>(I);
  if (Ty == ScalarType::Bool)
    return B ? 1.0 : 0.0;
  return F;
}

int64_t ConstVal::asInt() const {
  if (Ty == ScalarType::Float)
    return truncToInt(F);
  if (Ty == ScalarType::Bool)
    return B ? 1 : 0;
  return I;
}

bool ConstVal::asBool() const {
  if (Ty == ScalarType::Int)
    return I != 0;
  if (Ty == ScalarType::Float)
    return F != 0;
  return B;
}

ConstVal ConstVal::convertTo(ScalarType To) const {
  if (Ty == To)
    return *this;
  if (To == ScalarType::Float)
    return makeFloat(asFloat());
  if (To == ScalarType::Int)
    return makeInt(asInt());
  if (To == ScalarType::Bool)
    return makeBool(asBool());
  // Void (or an unknown target): keep the value unchanged.
  return *this;
}

std::optional<ConstVal> ConstEval::eval(const Expr *E) {
  if (!E)
    return std::nullopt;
  switch (E->getKind()) {
  case Expr::Kind::IntLit:
    return ConstVal::makeInt(cast<IntLit>(E)->getValue());
  case Expr::Kind::FloatLit:
    return ConstVal::makeFloat(cast<FloatLit>(E)->getValue());
  case Expr::Kind::BoolLit:
    return ConstVal::makeBool(cast<BoolLit>(E)->getValue());
  case Expr::Kind::VarRef: {
    const auto *Ref = cast<VarRef>(E);
    if (!Ref->getDecl())
      return std::nullopt;
    return Env.get(Ref->getDecl());
  }
  case Expr::Kind::ArrayIndex:
    return std::nullopt; // Arrays have no compile-time storage here.
  case Expr::Kind::Binary:
    return evalBinary(cast<BinaryExpr>(E));
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    auto Sub = eval(U->getSub());
    if (!Sub)
      return std::nullopt;
    switch (U->getOp()) {
    case UnaryOp::Neg:
      if (Sub->Ty == ScalarType::Int)
        return ConstVal::makeInt(wrapNeg(Sub->I));
      return ConstVal::makeFloat(-Sub->asFloat());
    case UnaryOp::LogNot:
      return ConstVal::makeBool(!Sub->asBool());
    case UnaryOp::BitNot:
      return ConstVal::makeInt(~Sub->asInt());
    }
    return std::nullopt;
  }
  case Expr::Kind::Assign: {
    const auto *A = cast<AssignExpr>(E);
    const auto *Ref = dyn_cast<VarRef>(A->getTarget());
    if (!Ref || !Ref->getDecl())
      return std::nullopt;
    auto RHS = eval(A->getValue());
    if (!RHS)
      return std::nullopt;
    ConstVal NewVal = *RHS;
    if (A->getOp() != AssignExpr::Op::Assign) {
      auto Old = Env.get(Ref->getDecl());
      if (!Old)
        return std::nullopt;
      ScalarType Ty = Ref->getDecl()->getElemType();
      if (Ty == ScalarType::Int && RHS->Ty == ScalarType::Int) {
        int64_t L = Old->asInt(), R = RHS->asInt();
        switch (A->getOp()) {
        case AssignExpr::Op::Add:
          NewVal = ConstVal::makeInt(wrapAdd(L, R));
          break;
        case AssignExpr::Op::Sub:
          NewVal = ConstVal::makeInt(wrapSub(L, R));
          break;
        case AssignExpr::Op::Mul:
          NewVal = ConstVal::makeInt(wrapMul(L, R));
          break;
        case AssignExpr::Op::Div:
          if (divTraps(L, R))
            return std::nullopt;
          NewVal = ConstVal::makeInt(L / R);
          break;
        default:
          return std::nullopt;
        }
      } else {
        double L = Old->asFloat(), R = RHS->asFloat();
        switch (A->getOp()) {
        case AssignExpr::Op::Add:
          NewVal = ConstVal::makeFloat(L + R);
          break;
        case AssignExpr::Op::Sub:
          NewVal = ConstVal::makeFloat(L - R);
          break;
        case AssignExpr::Op::Mul:
          NewVal = ConstVal::makeFloat(L * R);
          break;
        case AssignExpr::Op::Div:
          NewVal = ConstVal::makeFloat(L / R);
          break;
        default:
          return std::nullopt;
        }
      }
    }
    NewVal = NewVal.convertTo(Ref->getDecl()->getElemType());
    Env.set(Ref->getDecl(), NewVal);
    return NewVal;
  }
  case Expr::Kind::Call:
    return evalCall(cast<CallExpr>(E));
  case Expr::Kind::Cast: {
    const auto *C = cast<CastExpr>(E);
    auto Sub = eval(C->getSub());
    if (!Sub)
      return std::nullopt;
    return Sub->convertTo(C->getTo());
  }
  }
  return std::nullopt;
}

std::optional<ConstVal> ConstEval::evalBinary(const BinaryExpr *B) {
  // Logical operators short-circuit.
  if (B->getOp() == BinaryOp::LogAnd || B->getOp() == BinaryOp::LogOr) {
    auto L = eval(B->getLHS());
    if (!L)
      return std::nullopt;
    bool LV = L->asBool();
    if (B->getOp() == BinaryOp::LogAnd && !LV)
      return ConstVal::makeBool(false);
    if (B->getOp() == BinaryOp::LogOr && LV)
      return ConstVal::makeBool(true);
    auto R = eval(B->getRHS());
    if (!R)
      return std::nullopt;
    return ConstVal::makeBool(R->asBool());
  }

  auto L = eval(B->getLHS());
  auto R = eval(B->getRHS());
  if (!L || !R)
    return std::nullopt;

  bool BothInt = L->Ty == ScalarType::Int && R->Ty == ScalarType::Int;
  switch (B->getOp()) {
  case BinaryOp::Add:
    return BothInt ? ConstVal::makeInt(wrapAdd(L->I, R->I))
                   : ConstVal::makeFloat(L->asFloat() + R->asFloat());
  case BinaryOp::Sub:
    return BothInt ? ConstVal::makeInt(wrapSub(L->I, R->I))
                   : ConstVal::makeFloat(L->asFloat() - R->asFloat());
  case BinaryOp::Mul:
    return BothInt ? ConstVal::makeInt(wrapMul(L->I, R->I))
                   : ConstVal::makeFloat(L->asFloat() * R->asFloat());
  case BinaryOp::Div:
    if (BothInt)
      return divTraps(L->I, R->I)
                 ? std::nullopt
                 : std::optional(ConstVal::makeInt(L->I / R->I));
    return R->asFloat() == 0
               ? std::nullopt
               : std::optional(
                     ConstVal::makeFloat(L->asFloat() / R->asFloat()));
  case BinaryOp::Rem:
    return divTraps(L->I, R->I)
               ? std::nullopt
               : std::optional(ConstVal::makeInt(L->I % R->I));
  case BinaryOp::BitAnd:
    return ConstVal::makeInt(L->I & R->I);
  case BinaryOp::BitOr:
    return ConstVal::makeInt(L->I | R->I);
  case BinaryOp::BitXor:
    return ConstVal::makeInt(L->I ^ R->I);
  case BinaryOp::Shl:
    return ConstVal::makeInt(wrapShl(L->I, R->I));
  case BinaryOp::Shr:
    return ConstVal::makeInt(L->I >> (R->I & 63));
  case BinaryOp::EQ:
    if (L->Ty == ScalarType::Bool)
      return ConstVal::makeBool(L->B == R->B);
    return BothInt ? ConstVal::makeBool(L->I == R->I)
                   : ConstVal::makeBool(L->asFloat() == R->asFloat());
  case BinaryOp::NE:
    if (L->Ty == ScalarType::Bool)
      return ConstVal::makeBool(L->B != R->B);
    return BothInt ? ConstVal::makeBool(L->I != R->I)
                   : ConstVal::makeBool(L->asFloat() != R->asFloat());
  case BinaryOp::LT:
    return BothInt ? ConstVal::makeBool(L->I < R->I)
                   : ConstVal::makeBool(L->asFloat() < R->asFloat());
  case BinaryOp::LE:
    return BothInt ? ConstVal::makeBool(L->I <= R->I)
                   : ConstVal::makeBool(L->asFloat() <= R->asFloat());
  case BinaryOp::GT:
    return BothInt ? ConstVal::makeBool(L->I > R->I)
                   : ConstVal::makeBool(L->asFloat() > R->asFloat());
  case BinaryOp::GE:
    return BothInt ? ConstVal::makeBool(L->I >= R->I)
                   : ConstVal::makeBool(L->asFloat() >= R->asFloat());
  default:
    return std::nullopt;
  }
}

std::optional<ConstVal> ConstEval::evalCall(const CallExpr *C) {
  std::vector<ConstVal> Args;
  for (const Expr *Arg : C->getArgs()) {
    auto V = eval(Arg);
    if (!V)
      return std::nullopt;
    Args.push_back(*V);
  }
  switch (C->getBuiltin()) {
  case BuiltinFn::Sin:
    return ConstVal::makeFloat(std::sin(Args[0].asFloat()));
  case BuiltinFn::Cos:
    return ConstVal::makeFloat(std::cos(Args[0].asFloat()));
  case BuiltinFn::Tan:
    return ConstVal::makeFloat(std::tan(Args[0].asFloat()));
  case BuiltinFn::Atan:
    return ConstVal::makeFloat(std::atan(Args[0].asFloat()));
  case BuiltinFn::Atan2:
    return ConstVal::makeFloat(
        std::atan2(Args[0].asFloat(), Args[1].asFloat()));
  case BuiltinFn::Exp:
    return ConstVal::makeFloat(std::exp(Args[0].asFloat()));
  case BuiltinFn::Log:
    return ConstVal::makeFloat(std::log(Args[0].asFloat()));
  case BuiltinFn::Sqrt:
    return ConstVal::makeFloat(std::sqrt(Args[0].asFloat()));
  case BuiltinFn::Abs:
    if (Args[0].Ty == ScalarType::Int)
      return ConstVal::makeInt(Args[0].I < 0 ? wrapNeg(Args[0].I)
                                             : Args[0].I);
    return ConstVal::makeFloat(std::fabs(Args[0].asFloat()));
  case BuiltinFn::Floor:
    return ConstVal::makeFloat(std::floor(Args[0].asFloat()));
  case BuiltinFn::Ceil:
    return ConstVal::makeFloat(std::ceil(Args[0].asFloat()));
  case BuiltinFn::Pow:
    return ConstVal::makeFloat(std::pow(Args[0].asFloat(), Args[1].asFloat()));
  case BuiltinFn::Fmod:
    return ConstVal::makeFloat(
        std::fmod(Args[0].asFloat(), Args[1].asFloat()));
  case BuiltinFn::Min:
    if (Args[0].Ty == ScalarType::Int && Args[1].Ty == ScalarType::Int)
      return ConstVal::makeInt(std::min(Args[0].I, Args[1].I));
    return ConstVal::makeFloat(std::min(Args[0].asFloat(), Args[1].asFloat()));
  case BuiltinFn::Max:
    if (Args[0].Ty == ScalarType::Int && Args[1].Ty == ScalarType::Int)
      return ConstVal::makeInt(std::max(Args[0].I, Args[1].I));
    return ConstVal::makeFloat(std::max(Args[0].asFloat(), Args[1].asFloat()));
  case BuiltinFn::Push:
  case BuiltinFn::Pop:
  case BuiltinFn::Peek:
    return std::nullopt; // Stream primitives are never compile-time.
  }
  return std::nullopt;
}

bool ConstEval::exec(const Stmt *S, const GraphCallback &CB) {
  if (!S)
    return true;
  if (StepBudget-- == 0) {
    Diags.error(S->getLoc(), "elaboration step budget exhausted "
                             "(non-terminating composite body?)");
    return false;
  }
  switch (S->getKind()) {
  case Stmt::Kind::Block: {
    for (const Stmt *Sub : cast<BlockStmt>(S)->getBody())
      if (!exec(Sub, CB))
        return false;
    return true;
  }
  case Stmt::Kind::Decl: {
    const VarDecl *D = cast<DeclStmt>(S)->getDecl();
    if (!D)
      return false;
    if (D->getInit()) {
      auto V = eval(D->getInit());
      if (!V) {
        Diags.error(D->getLoc(),
                    "initializer is not a compile-time constant");
        return false;
      }
      Env.set(D, V->convertTo(D->getElemType()));
    }
    return true;
  }
  case Stmt::Kind::ExprS: {
    const Expr *E = cast<ExprStmt>(S)->getExpr();
    if (!eval(E)) {
      Diags.error(E->getLoc(),
                  "expression is not evaluable at elaboration time");
      return false;
    }
    return true;
  }
  case Stmt::Kind::If: {
    const auto *If = cast<IfStmt>(S);
    auto Cond = eval(If->getCond());
    if (!Cond) {
      Diags.error(If->getCond()->getLoc(),
                  "condition is not a compile-time constant");
      return false;
    }
    return Cond->asBool() ? exec(If->getThen(), CB)
                          : exec(If->getElse(), CB);
  }
  case Stmt::Kind::For: {
    const auto *For = cast<ForStmt>(S);
    if (For->getInit() && !exec(For->getInit(), CB))
      return false;
    for (;;) {
      if (StepBudget-- == 0) {
        Diags.error(For->getLoc(), "elaboration step budget exhausted");
        return false;
      }
      auto Cond = eval(For->getCond());
      if (!Cond) {
        Diags.error(For->getCond()->getLoc(),
                    "loop condition is not a compile-time constant");
        return false;
      }
      if (!Cond->asBool())
        return true;
      if (!exec(For->getBody(), CB))
        return false;
      if (For->getStep() && !eval(For->getStep())) {
        Diags.error(For->getStep()->getLoc(),
                    "loop step is not evaluable at elaboration time");
        return false;
      }
    }
  }
  case Stmt::Kind::While: {
    const auto *While = cast<WhileStmt>(S);
    for (;;) {
      if (StepBudget-- == 0) {
        Diags.error(While->getLoc(), "elaboration step budget exhausted");
        return false;
      }
      auto Cond = eval(While->getCond());
      if (!Cond) {
        Diags.error(While->getCond()->getLoc(),
                    "condition is not a compile-time constant");
        return false;
      }
      if (!Cond->asBool())
        return true;
      if (!exec(While->getBody(), CB))
        return false;
    }
  }
  case Stmt::Kind::Add:
  case Stmt::Kind::SplitS:
  case Stmt::Kind::JoinS:
  case Stmt::Kind::Enqueue:
    return CB(S);
  }
  return false;
}
