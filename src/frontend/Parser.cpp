//===--- Parser.cpp - Recursive-descent parser for the subset ------------===//

#include "frontend/Parser.h"
#include <cassert>
#include <sstream>

using namespace laminar;
using namespace laminar::ast;

namespace {

class Parser {
public:
  Parser(std::vector<Token> Tokens, DiagnosticEngine &Diags)
      : Tokens(std::move(Tokens)), Diags(Diags),
        P(std::make_unique<Program>()) {}

  std::unique_ptr<Program> run() {
    while (!at(TokKind::Eof)) {
      // Stop early once the diagnostic engine hit its error limit;
      // everything further would be suppressed anyway.
      if (Diags.tooManyErrors())
        break;
      size_t Before = Pos;
      if (StreamDecl *D = parseDecl()) {
        P->addDecl(D);
      } else {
        synchronizeToDecl();
        if (Pos == Before)
          advance(); // guarantee progress on unrecoverable prefixes
      }
    }
    return std::move(P);
  }

private:
  // Token helpers -------------------------------------------------------
  const Token &cur() const { return Tokens[Pos]; }
  const Token &lookahead(unsigned N) const {
    size_t I = Pos + N;
    return I < Tokens.size() ? Tokens[I] : Tokens.back();
  }
  bool at(TokKind K) const { return cur().is(K); }
  Token advance() { return Tokens[Pos == Tokens.size() - 1 ? Pos : Pos++]; }
  bool accept(TokKind K) {
    if (!at(K))
      return false;
    advance();
    return true;
  }
  bool expect(TokKind K) {
    if (accept(K))
      return true;
    std::ostringstream OS;
    OS << "expected " << tokKindName(K) << ", found "
       << tokKindName(cur().Kind);
    Diags.error(cur().Loc, OS.str());
    return false;
  }

  void synchronizeToDecl() {
    // Skip to something that can start a declaration.
    while (!at(TokKind::Eof) && !at(TokKind::KwVoid) && !at(TokKind::KwInt) &&
           !at(TokKind::KwFloat) && !at(TokKind::KwBoolean))
      advance();
  }

  // Types ----------------------------------------------------------------
  bool atType() const {
    return at(TokKind::KwVoid) || at(TokKind::KwInt) || at(TokKind::KwFloat) ||
           at(TokKind::KwBoolean);
  }

  ScalarType parseType() {
    if (accept(TokKind::KwVoid))
      return ScalarType::Void;
    if (accept(TokKind::KwInt))
      return ScalarType::Int;
    if (accept(TokKind::KwFloat))
      return ScalarType::Float;
    if (accept(TokKind::KwBoolean))
      return ScalarType::Bool;
    Diags.error(cur().Loc, "expected a type");
    advance();
    return ScalarType::Void;
  }

  // Declarations ---------------------------------------------------------
  StreamDecl *parseDecl();
  std::vector<VarDecl *> parseParams();
  FilterDecl *parseFilterRest(ScalarType InTy, ScalarType OutTy);
  CompositeDecl *parseCompositeRest(StreamDecl::Kind K, ScalarType InTy,
                                    ScalarType OutTy);
  VarDecl *parseVarDecl(VarDecl::Scope Scope);

  // Statements -----------------------------------------------------------
  Stmt *parseStmt();
  BlockStmt *parseBlock();
  Stmt *parseIf();
  Stmt *parseFor();
  Stmt *parseWhile();
  Stmt *parseAdd();
  Stmt *parseSplit();
  Stmt *parseJoin();

  // Expressions (precedence climbing) -------------------------------------
  Expr *parseExpr() { return parseAssign(); }
  Expr *parseAssign();
  Expr *parseBinary(int MinPrec);
  Expr *parseUnary();
  Expr *parsePostfix();
  Expr *parsePrimary();
  std::vector<Expr *> parseArgs();

  std::vector<Token> Tokens;
  DiagnosticEngine &Diags;
  std::unique_ptr<Program> P;
  size_t Pos = 0;
};

} // namespace

StreamDecl *Parser::parseDecl() {
  SourceLoc Loc = cur().Loc;
  if (!atType()) {
    Diags.error(Loc, "expected a stream declaration");
    advance();
    return nullptr;
  }
  ScalarType InTy = parseType();
  if (!expect(TokKind::Arrow))
    return nullptr;
  ScalarType OutTy = parseType();

  if (accept(TokKind::KwFilter))
    return parseFilterRest(InTy, OutTy);
  if (accept(TokKind::KwPipeline))
    return parseCompositeRest(StreamDecl::Kind::Pipeline, InTy, OutTy);
  if (accept(TokKind::KwSplitjoin))
    return parseCompositeRest(StreamDecl::Kind::SplitJoin, InTy, OutTy);
  if (accept(TokKind::KwFeedbackloop))
    return parseCompositeRest(StreamDecl::Kind::FeedbackLoop, InTy, OutTy);
  Diags.error(cur().Loc,
              "expected 'filter', 'pipeline', 'splitjoin' or "
              "'feedbackloop'");
  return nullptr;
}

std::vector<VarDecl *> Parser::parseParams() {
  std::vector<VarDecl *> Params;
  if (!accept(TokKind::LParen))
    return Params;
  if (!at(TokKind::RParen)) {
    do {
      SourceLoc Loc = cur().Loc;
      ScalarType Ty = parseType();
      if (!at(TokKind::Identifier)) {
        Diags.error(cur().Loc, "expected parameter name");
        break;
      }
      std::string Name = advance().Text;
      Params.push_back(P->create<VarDecl>(Name, Ty, nullptr, nullptr,
                                          VarDecl::Scope::Param, Loc));
    } while (accept(TokKind::Comma));
  }
  expect(TokKind::RParen);
  return Params;
}

VarDecl *Parser::parseVarDecl(VarDecl::Scope Scope) {
  SourceLoc Loc = cur().Loc;
  ScalarType Ty = parseType();
  // StreamIt-style array type: float[N] name.
  Expr *ArraySize = nullptr;
  if (accept(TokKind::LBracket)) {
    ArraySize = parseExpr();
    expect(TokKind::RBracket);
  }
  if (!at(TokKind::Identifier)) {
    Diags.error(cur().Loc, "expected variable name");
    return nullptr;
  }
  std::string Name = advance().Text;
  // C-style array suffix: float name[N].
  if (!ArraySize && accept(TokKind::LBracket)) {
    ArraySize = parseExpr();
    expect(TokKind::RBracket);
  }
  Expr *Init = nullptr;
  if (accept(TokKind::Assign))
    Init = parseExpr();
  expect(TokKind::Semi);
  return P->create<VarDecl>(Name, Ty, ArraySize, Init, Scope, Loc);
}

FilterDecl *Parser::parseFilterRest(ScalarType InTy, ScalarType OutTy) {
  SourceLoc Loc = cur().Loc;
  if (!at(TokKind::Identifier)) {
    Diags.error(cur().Loc, "expected filter name");
    return nullptr;
  }
  std::string Name = advance().Text;
  std::vector<VarDecl *> Params = parseParams();
  if (!expect(TokKind::LBrace))
    return nullptr;

  std::vector<VarDecl *> Fields;
  BlockStmt *InitBody = nullptr;
  Expr *PushRate = nullptr, *PopRate = nullptr, *PeekRate = nullptr;
  BlockStmt *WorkBody = nullptr;

  while (!at(TokKind::RBrace) && !at(TokKind::Eof) &&
         !Diags.tooManyErrors()) {
    if (accept(TokKind::KwInit)) {
      if (InitBody)
        Diags.error(cur().Loc, "duplicate init block");
      InitBody = parseBlock();
      continue;
    }
    if (accept(TokKind::KwWork)) {
      if (WorkBody)
        Diags.error(cur().Loc, "duplicate work function");
      while (at(TokKind::KwPush) || at(TokKind::KwPop) || at(TokKind::KwPeek)) {
        TokKind K = advance().Kind;
        Expr *Rate = parseBinary(0);
        if (K == TokKind::KwPush)
          PushRate = Rate;
        else if (K == TokKind::KwPop)
          PopRate = Rate;
        else
          PeekRate = Rate;
      }
      WorkBody = parseBlock();
      continue;
    }
    if (atType()) {
      if (VarDecl *Field = parseVarDecl(VarDecl::Scope::Field))
        Fields.push_back(Field);
      continue;
    }
    Diags.error(cur().Loc, "expected field, init or work in filter body");
    advance();
  }
  SourceLoc CloseLoc = cur().Loc;
  expect(TokKind::RBrace);

  if (!WorkBody) {
    Diags.error(SourceRange(Loc, CloseLoc),
                "filter '" + Name + "' has no work function");
    return nullptr;
  }
  return P->create<FilterDecl>(Name, InTy, OutTy, std::move(Params),
                               std::move(Fields), InitBody, PushRate, PopRate,
                               PeekRate, WorkBody, Loc);
}

CompositeDecl *Parser::parseCompositeRest(StreamDecl::Kind K, ScalarType InTy,
                                          ScalarType OutTy) {
  SourceLoc Loc = cur().Loc;
  if (!at(TokKind::Identifier)) {
    Diags.error(cur().Loc, "expected composite name");
    return nullptr;
  }
  std::string Name = advance().Text;
  std::vector<VarDecl *> Params = parseParams();
  BlockStmt *Body = parseBlock();
  if (!Body)
    return nullptr;
  return P->create<CompositeDecl>(K, Name, InTy, OutTy, std::move(Params),
                                  Body, Loc);
}

BlockStmt *Parser::parseBlock() {
  SourceLoc Loc = cur().Loc;
  if (!expect(TokKind::LBrace))
    return nullptr;
  std::vector<Stmt *> Body;
  while (!at(TokKind::RBrace) && !at(TokKind::Eof) &&
         !Diags.tooManyErrors()) {
    if (Stmt *S = parseStmt())
      Body.push_back(S);
    else {
      // Recover: skip to the end of the statement.
      while (!at(TokKind::Semi) && !at(TokKind::RBrace) && !at(TokKind::Eof))
        advance();
      accept(TokKind::Semi);
    }
  }
  expect(TokKind::RBrace);
  return P->create<BlockStmt>(std::move(Body), Loc);
}

Stmt *Parser::parseStmt() {
  SourceLoc Loc = cur().Loc;
  switch (cur().Kind) {
  case TokKind::LBrace:
    return parseBlock();
  case TokKind::KwIf:
    return parseIf();
  case TokKind::KwFor:
    return parseFor();
  case TokKind::KwWhile:
    return parseWhile();
  case TokKind::KwAdd:
  case TokKind::KwBody:
  case TokKind::KwLoop:
    return parseAdd();
  case TokKind::KwEnqueue: {
    advance();
    Expr *V = parseExpr();
    expect(TokKind::Semi);
    if (!V)
      return nullptr;
    return P->create<EnqueueStmt>(V, Loc);
  }
  case TokKind::KwSplit:
    return parseSplit();
  case TokKind::KwJoin:
    return parseJoin();
  default:
    break;
  }
  if (atType()) {
    // A declaration, unless this is a cast expression "(type)..." — but
    // casts never start a statement at type keywords without '('.
    VarDecl *D = parseVarDecl(VarDecl::Scope::Local);
    if (!D)
      return nullptr;
    return P->create<DeclStmt>(D, Loc);
  }
  Expr *E = parseExpr();
  if (!E)
    return nullptr;
  expect(TokKind::Semi);
  return P->create<ExprStmt>(E, Loc);
}

Stmt *Parser::parseIf() {
  SourceLoc Loc = cur().Loc;
  expect(TokKind::KwIf);
  expect(TokKind::LParen);
  Expr *Cond = parseExpr();
  expect(TokKind::RParen);
  Stmt *Then = parseStmt();
  Stmt *Else = nullptr;
  if (accept(TokKind::KwElse))
    Else = parseStmt();
  if (!Cond || !Then)
    return nullptr;
  return P->create<IfStmt>(Cond, Then, Else, Loc);
}

Stmt *Parser::parseFor() {
  SourceLoc Loc = cur().Loc;
  expect(TokKind::KwFor);
  expect(TokKind::LParen);
  Stmt *Init = nullptr;
  if (!accept(TokKind::Semi)) {
    if (atType()) {
      SourceLoc DLoc = cur().Loc;
      VarDecl *D = parseVarDecl(VarDecl::Scope::Local); // consumes ';'
      if (D)
        Init = P->create<DeclStmt>(D, DLoc);
    } else {
      Expr *E = parseExpr();
      expect(TokKind::Semi);
      if (E)
        Init = P->create<ExprStmt>(E, Loc);
    }
  }
  Expr *Cond = nullptr;
  if (!at(TokKind::Semi))
    Cond = parseExpr();
  expect(TokKind::Semi);
  Expr *Step = nullptr;
  if (!at(TokKind::RParen))
    Step = parseExpr();
  expect(TokKind::RParen);
  Stmt *Body = parseStmt();
  if (!Body)
    return nullptr;
  return P->create<ForStmt>(Init, Cond, Step, Body, Loc);
}

Stmt *Parser::parseWhile() {
  SourceLoc Loc = cur().Loc;
  expect(TokKind::KwWhile);
  expect(TokKind::LParen);
  Expr *Cond = parseExpr();
  expect(TokKind::RParen);
  Stmt *Body = parseStmt();
  if (!Cond || !Body)
    return nullptr;
  return P->create<WhileStmt>(Cond, Body, Loc);
}

Stmt *Parser::parseAdd() {
  SourceLoc Loc = cur().Loc;
  AddStmt::Role Role = AddStmt::Role::Plain;
  if (accept(TokKind::KwBody))
    Role = AddStmt::Role::Body;
  else if (accept(TokKind::KwLoop))
    Role = AddStmt::Role::Loop;
  else
    expect(TokKind::KwAdd);
  if (!at(TokKind::Identifier)) {
    Diags.error(cur().Loc, "expected stream name");
    return nullptr;
  }
  std::string Child = advance().Text;
  std::vector<Expr *> Args;
  if (at(TokKind::LParen))
    Args = parseArgs();
  expect(TokKind::Semi);
  return P->create<AddStmt>(Child, std::move(Args), Role, Loc);
}

Stmt *Parser::parseSplit() {
  SourceLoc Loc = cur().Loc;
  expect(TokKind::KwSplit);
  if (accept(TokKind::KwDuplicate)) {
    expect(TokKind::Semi);
    return P->create<SplitStmt>(SplitStmt::SplitKind::Duplicate,
                                std::vector<Expr *>(), Loc);
  }
  if (accept(TokKind::KwRoundrobin)) {
    std::vector<Expr *> Weights;
    if (at(TokKind::LParen))
      Weights = parseArgs();
    expect(TokKind::Semi);
    return P->create<SplitStmt>(SplitStmt::SplitKind::RoundRobin,
                                std::move(Weights), Loc);
  }
  Diags.error(cur().Loc, "expected 'duplicate' or 'roundrobin' after 'split'");
  return nullptr;
}

Stmt *Parser::parseJoin() {
  SourceLoc Loc = cur().Loc;
  expect(TokKind::KwJoin);
  if (!expect(TokKind::KwRoundrobin))
    return nullptr;
  std::vector<Expr *> Weights;
  if (at(TokKind::LParen))
    Weights = parseArgs();
  expect(TokKind::Semi);
  return P->create<JoinStmt>(std::move(Weights), Loc);
}

std::vector<Expr *> Parser::parseArgs() {
  std::vector<Expr *> Args;
  expect(TokKind::LParen);
  if (!at(TokKind::RParen)) {
    do {
      if (Expr *E = parseExpr())
        Args.push_back(E);
    } while (accept(TokKind::Comma));
  }
  expect(TokKind::RParen);
  return Args;
}

Expr *Parser::parseAssign() {
  Expr *LHS = parseBinary(0);
  if (!LHS)
    return nullptr;
  SourceLoc Loc = cur().Loc;
  AssignExpr::Op Op;
  switch (cur().Kind) {
  case TokKind::Assign:
    Op = AssignExpr::Op::Assign;
    break;
  case TokKind::PlusAssign:
    Op = AssignExpr::Op::Add;
    break;
  case TokKind::MinusAssign:
    Op = AssignExpr::Op::Sub;
    break;
  case TokKind::StarAssign:
    Op = AssignExpr::Op::Mul;
    break;
  case TokKind::SlashAssign:
    Op = AssignExpr::Op::Div;
    break;
  default:
    return LHS;
  }
  advance();
  Expr *RHS = parseAssign();
  if (!RHS)
    return nullptr;
  return P->create<AssignExpr>(Op, LHS, RHS, Loc);
}

/// Binary operator precedence; higher binds tighter.
static int precedenceOf(TokKind K) {
  switch (K) {
  case TokKind::PipePipe:
    return 1;
  case TokKind::AmpAmp:
    return 2;
  case TokKind::Pipe:
    return 3;
  case TokKind::Caret:
    return 4;
  case TokKind::Amp:
    return 5;
  case TokKind::EqEq:
  case TokKind::NotEq:
    return 6;
  case TokKind::Less:
  case TokKind::LessEq:
  case TokKind::Greater:
  case TokKind::GreaterEq:
    return 7;
  case TokKind::Shl:
  case TokKind::Shr:
    return 8;
  case TokKind::Plus:
  case TokKind::Minus:
    return 9;
  case TokKind::Star:
  case TokKind::Slash:
  case TokKind::Percent:
    return 10;
  default:
    return 0;
  }
}

static BinaryOp binaryOpOf(TokKind K) {
  switch (K) {
  case TokKind::PipePipe:
    return BinaryOp::LogOr;
  case TokKind::AmpAmp:
    return BinaryOp::LogAnd;
  case TokKind::Pipe:
    return BinaryOp::BitOr;
  case TokKind::Caret:
    return BinaryOp::BitXor;
  case TokKind::Amp:
    return BinaryOp::BitAnd;
  case TokKind::EqEq:
    return BinaryOp::EQ;
  case TokKind::NotEq:
    return BinaryOp::NE;
  case TokKind::Less:
    return BinaryOp::LT;
  case TokKind::LessEq:
    return BinaryOp::LE;
  case TokKind::Greater:
    return BinaryOp::GT;
  case TokKind::GreaterEq:
    return BinaryOp::GE;
  case TokKind::Shl:
    return BinaryOp::Shl;
  case TokKind::Shr:
    return BinaryOp::Shr;
  case TokKind::Plus:
    return BinaryOp::Add;
  case TokKind::Minus:
    return BinaryOp::Sub;
  case TokKind::Star:
    return BinaryOp::Mul;
  case TokKind::Slash:
    return BinaryOp::Div;
  case TokKind::Percent:
    return BinaryOp::Rem;
  default:
    assert(false && "not a binary operator token");
    return BinaryOp::Add;
  }
}

Expr *Parser::parseBinary(int MinPrec) {
  Expr *LHS = parseUnary();
  if (!LHS)
    return nullptr;
  for (;;) {
    int Prec = precedenceOf(cur().Kind);
    if (Prec == 0 || Prec < MinPrec)
      return LHS;
    Token OpTok = advance();
    Expr *RHS = parseBinary(Prec + 1);
    if (!RHS)
      return nullptr;
    LHS = P->create<BinaryExpr>(binaryOpOf(OpTok.Kind), LHS, RHS, OpTok.Loc);
  }
}

Expr *Parser::parseUnary() {
  SourceLoc Loc = cur().Loc;
  if (accept(TokKind::Minus)) {
    Expr *Sub = parseUnary();
    return Sub ? P->create<UnaryExpr>(UnaryOp::Neg, Sub, Loc) : nullptr;
  }
  if (accept(TokKind::Bang)) {
    Expr *Sub = parseUnary();
    return Sub ? P->create<UnaryExpr>(UnaryOp::LogNot, Sub, Loc) : nullptr;
  }
  if (accept(TokKind::Tilde)) {
    Expr *Sub = parseUnary();
    return Sub ? P->create<UnaryExpr>(UnaryOp::BitNot, Sub, Loc) : nullptr;
  }
  // Cast: '(' type ')' unary.
  if (at(TokKind::LParen) &&
      (lookahead(1).is(TokKind::KwInt) || lookahead(1).is(TokKind::KwFloat)) &&
      lookahead(2).is(TokKind::RParen)) {
    advance();
    ScalarType To = parseType();
    advance(); // ')'
    Expr *Sub = parseUnary();
    return Sub ? P->create<CastExpr>(To, Sub, Loc) : nullptr;
  }
  return parsePostfix();
}

Expr *Parser::parsePostfix() {
  Expr *E = parsePrimary();
  if (!E)
    return nullptr;
  // x++ / x-- as sugar for x += 1 / x -= 1.
  SourceLoc Loc = cur().Loc;
  if (accept(TokKind::PlusPlus))
    return P->create<AssignExpr>(AssignExpr::Op::Add, E,
                                 P->create<IntLit>(1, Loc), Loc);
  if (accept(TokKind::MinusMinus))
    return P->create<AssignExpr>(AssignExpr::Op::Sub, E,
                                 P->create<IntLit>(1, Loc), Loc);
  return E;
}

Expr *Parser::parsePrimary() {
  SourceLoc Loc = cur().Loc;
  switch (cur().Kind) {
  case TokKind::IntLiteral: {
    int64_t V = advance().IntValue;
    return P->create<IntLit>(V, Loc);
  }
  case TokKind::FloatLiteral: {
    double V = advance().FloatValue;
    return P->create<FloatLit>(V, Loc);
  }
  case TokKind::KwTrue:
    advance();
    return P->create<BoolLit>(true, Loc);
  case TokKind::KwFalse:
    advance();
    return P->create<BoolLit>(false, Loc);
  case TokKind::LParen: {
    advance();
    Expr *E = parseExpr();
    expect(TokKind::RParen);
    return E;
  }
  case TokKind::KwPush:
  case TokKind::KwPop:
  case TokKind::KwPeek: {
    TokKind K = advance().Kind;
    std::vector<Expr *> Args;
    if (at(TokKind::LParen))
      Args = parseArgs();
    const char *Name = K == TokKind::KwPush  ? "push"
                       : K == TokKind::KwPop ? "pop"
                                             : "peek";
    return P->create<CallExpr>(Name, std::move(Args), Loc);
  }
  case TokKind::Identifier: {
    std::string Name = advance().Text;
    if (at(TokKind::LParen)) {
      std::vector<Expr *> Args = parseArgs();
      return P->create<CallExpr>(std::move(Name), std::move(Args), Loc);
    }
    VarRef *Ref = P->create<VarRef>(std::move(Name), Loc);
    if (at(TokKind::LBracket)) {
      advance();
      Expr *Index = parseExpr();
      expect(TokKind::RBracket);
      if (!Index)
        return nullptr;
      return P->create<ArrayIndex>(Ref, Index, Loc);
    }
    return Ref;
  }
  default: {
    std::ostringstream OS;
    OS << "expected an expression, found " << tokKindName(cur().Kind);
    Diags.error(Loc, OS.str());
    advance();
    return nullptr;
  }
  }
}

std::unique_ptr<Program> laminar::parseProgram(const std::string &Source,
                                               DiagnosticEngine &Diags) {
  Lexer L(Source, Diags);
  Parser Par(L.lexAll(), Diags);
  return Par.run();
}
