//===--- Sema.cpp - Name resolution and type checking ---------------------===//

#include "frontend/Sema.h"
#include <cassert>
#include <sstream>
#include <unordered_map>

using namespace laminar;
using namespace laminar::ast;

namespace {

/// The statement context determines which constructs are legal: stream
/// primitives only in work functions, graph statements only in composite
/// bodies.
enum class Context { Work, Init, Composite };

class Sema {
public:
  Sema(Program &P, DiagnosticEngine &Diags) : P(P), Diags(Diags) {}

  bool run() {
    for (StreamDecl *D : P.getDecls()) {
      if (auto *F = dyn_cast<FilterDecl>(D))
        checkFilter(*F);
      else
        checkComposite(*cast<CompositeDecl>(D));
    }
    return !Diags.hasErrors();
  }

private:
  // Scope handling -------------------------------------------------------
  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }

  void declare(VarDecl *D) {
    if (!D)
      return;
    if (lookupInnermost(D->getName()))
      Diags.error(D->getLoc(), "redefinition of '" + D->getName() + "'");
    Scopes.back()[D->getName()] = D;
  }

  VarDecl *lookupInnermost(const std::string &Name) const {
    auto It = Scopes.back().find(Name);
    return It == Scopes.back().end() ? nullptr : It->second;
  }

  VarDecl *lookup(const std::string &Name) const {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto Found = It->find(Name);
      if (Found != It->end())
        return Found->second;
    }
    return nullptr;
  }

  // Declarations ---------------------------------------------------------
  void checkFilter(FilterDecl &F);
  void checkComposite(CompositeDecl &C);
  void checkVarDecl(VarDecl *D, Context Ctx);

  // Statements -----------------------------------------------------------
  void checkStmt(Stmt *S, Context Ctx);
  void checkBlock(BlockStmt *B, Context Ctx, bool NewScope = true);

  // Expressions ----------------------------------------------------------
  ScalarType checkExpr(Expr *E, Context Ctx);
  ScalarType checkCall(CallExpr *C, Context Ctx);
  void requireNumeric(Expr *E, const char *What);
  void requireConvertible(ScalarType From, ScalarType To, SourceLoc Loc,
                          const char *What);

  Program &P;
  DiagnosticEngine &Diags;
  std::vector<std::unordered_map<std::string, VarDecl *>> Scopes;
  /// Filter whose body is being checked (null inside composites).
  FilterDecl *CurFilter = nullptr;
  /// Kind of the composite being checked (valid in Context::Composite).
  StreamDecl::Kind CurCompositeKind = StreamDecl::Kind::Pipeline;
};

} // namespace

static bool isNumeric(ScalarType Ty) {
  return Ty == ScalarType::Int || Ty == ScalarType::Float;
}

void Sema::requireNumeric(Expr *E, const char *What) {
  if (!isNumeric(E->getType()) && E->getType() != ScalarType::Void) {
    std::ostringstream OS;
    OS << What << " must be numeric, found "
       << scalarTypeName(E->getType());
    Diags.error(E->getLoc(), OS.str());
  }
}

void Sema::requireConvertible(ScalarType From, ScalarType To, SourceLoc Loc,
                              const char *What) {
  if (From == To)
    return;
  if (From == ScalarType::Int && To == ScalarType::Float)
    return; // Implicit widening.
  if (From == ScalarType::Void)
    return; // Already diagnosed.
  std::ostringstream OS;
  OS << "cannot convert " << What << " from " << scalarTypeName(From)
     << " to " << scalarTypeName(To)
     << (From == ScalarType::Float && To == ScalarType::Int
             ? " (use an explicit (int) cast)"
             : "");
  Diags.error(Loc, OS.str());
}

void Sema::checkVarDecl(VarDecl *D, Context Ctx) {
  if (!D)
    return;
  if (D->getElemType() == ScalarType::Void)
    Diags.error(D->getLoc(), "variable of type void");
  if (D->getArraySize()) {
    ScalarType Ty = checkExpr(D->getArraySize(), Ctx);
    if (Ty != ScalarType::Int)
      Diags.error(D->getArraySize()->getLoc(), "array size must be int");
    if (D->getInit())
      Diags.error(D->getLoc(), "array variables cannot have initializers");
  }
  if (D->getInit()) {
    ScalarType Ty = checkExpr(D->getInit(), Ctx);
    requireConvertible(Ty, D->getElemType(), D->getLoc(), "initializer");
  }
  declare(D);
}

void Sema::checkFilter(FilterDecl &F) {
  CurFilter = &F;
  pushScope();
  for (VarDecl *Param : F.getParams())
    declare(Param);

  pushScope();
  for (VarDecl *Field : F.getFields())
    checkVarDecl(Field, Context::Init);

  if (F.getInType() == ScalarType::Bool || F.getOutType() == ScalarType::Bool)
    Diags.error(F.getLoc(), "stream channels must carry int or float");

  // Rates must be integer expressions (evaluated during elaboration).
  for (Expr *Rate : {F.getPushRate(), F.getPopRate(), F.getPeekRate()}) {
    if (!Rate)
      continue;
    if (checkExpr(Rate, Context::Init) != ScalarType::Int)
      Diags.error(Rate->getLoc(), "I/O rate must be int");
  }
  if (F.getOutType() == ScalarType::Void && F.getPushRate())
    Diags.error(F.getLoc(), "filter with void output declares a push rate");
  if (F.getInType() == ScalarType::Void &&
      (F.getPopRate() || F.getPeekRate()))
    Diags.error(F.getLoc(), "filter with void input declares pop/peek rates");
  if (F.getOutType() != ScalarType::Void && !F.getPushRate())
    Diags.error(F.getLoc(), "filter with output must declare a push rate");
  if (F.getInType() != ScalarType::Void && !F.getPopRate())
    Diags.error(F.getLoc(), "filter with input must declare a pop rate");

  if (F.getInitBody())
    checkBlock(F.getInitBody(), Context::Init);
  checkBlock(F.getWorkBody(), Context::Work);

  popScope();
  popScope();
  CurFilter = nullptr;
}

void Sema::checkComposite(CompositeDecl &C) {
  CurCompositeKind = C.getKind();
  pushScope();
  for (VarDecl *Param : C.getParams())
    declare(Param);
  if (C.getInType() == ScalarType::Bool || C.getOutType() == ScalarType::Bool)
    Diags.error(C.getLoc(), "stream channels must carry int or float");
  checkBlock(C.getBody(), Context::Composite);
  popScope();
}

void Sema::checkBlock(BlockStmt *B, Context Ctx, bool NewScope) {
  if (!B)
    return;
  if (NewScope)
    pushScope();
  for (Stmt *S : B->getBody())
    checkStmt(S, Ctx);
  if (NewScope)
    popScope();
}

void Sema::checkStmt(Stmt *S, Context Ctx) {
  if (!S)
    return;
  switch (S->getKind()) {
  case Stmt::Kind::Block:
    checkBlock(cast<BlockStmt>(S), Ctx);
    return;
  case Stmt::Kind::Decl: {
    VarDecl *D = cast<DeclStmt>(S)->getDecl();
    checkVarDecl(D, Ctx);
    if (Ctx == Context::Composite && D && D->isArray())
      Diags.error(S->getLoc(), "array locals are not allowed in composites");
    return;
  }
  case Stmt::Kind::ExprS:
    checkExpr(cast<ExprStmt>(S)->getExpr(), Ctx);
    return;
  case Stmt::Kind::If: {
    auto *If = cast<IfStmt>(S);
    if (checkExpr(If->getCond(), Ctx) != ScalarType::Bool)
      Diags.error(If->getCond()->getLoc(), "condition must be boolean");
    checkStmt(If->getThen(), Ctx);
    checkStmt(If->getElse(), Ctx);
    return;
  }
  case Stmt::Kind::For: {
    auto *For = cast<ForStmt>(S);
    pushScope();
    checkStmt(For->getInit(), Ctx);
    if (For->getCond()) {
      if (checkExpr(For->getCond(), Ctx) != ScalarType::Bool)
        Diags.error(For->getCond()->getLoc(), "condition must be boolean");
    } else {
      Diags.error(For->getLoc(), "for loop without a condition");
    }
    if (For->getStep())
      checkExpr(For->getStep(), Ctx);
    checkStmt(For->getBody(), Ctx);
    popScope();
    return;
  }
  case Stmt::Kind::While: {
    auto *While = cast<WhileStmt>(S);
    if (checkExpr(While->getCond(), Ctx) != ScalarType::Bool)
      Diags.error(While->getCond()->getLoc(), "condition must be boolean");
    checkStmt(While->getBody(), Ctx);
    return;
  }
  case Stmt::Kind::Add: {
    if (Ctx != Context::Composite) {
      Diags.error(S->getLoc(), "'add' is only allowed in composite bodies");
      return;
    }
    auto *Add = cast<AddStmt>(S);
    bool InLoop = CurCompositeKind == StreamDecl::Kind::FeedbackLoop;
    if (Add->getRole() == AddStmt::Role::Plain && InLoop)
      Diags.error(S->getLoc(),
                  "use 'body' and 'loop' (not 'add') in feedbackloops");
    if (Add->getRole() != AddStmt::Role::Plain && !InLoop)
      Diags.error(S->getLoc(),
                  "'body'/'loop' are only allowed in feedbackloops");
    StreamDecl *Child = P.findDecl(Add->getChild());
    if (!Child) {
      Diags.error(S->getLoc(), "unknown stream '" + Add->getChild() + "'");
      return;
    }
    if (Add->getArgs().size() != Child->getParams().size()) {
      std::ostringstream OS;
      OS << "'" << Add->getChild() << "' expects "
         << Child->getParams().size() << " argument(s), got "
         << Add->getArgs().size();
      Diags.error(S->getLoc(), OS.str());
    }
    for (size_t I = 0; I < Add->getArgs().size(); ++I) {
      ScalarType Ty = checkExpr(Add->getArgs()[I], Ctx);
      if (I < Child->getParams().size())
        requireConvertible(Ty, Child->getParams()[I]->getElemType(),
                           Add->getArgs()[I]->getLoc(), "argument");
    }
    return;
  }
  case Stmt::Kind::SplitS: {
    if (Ctx != Context::Composite)
      Diags.error(S->getLoc(), "'split' is only allowed in splitjoin bodies");
    if (Ctx == Context::Composite &&
        CurCompositeKind == StreamDecl::Kind::Pipeline)
      Diags.error(S->getLoc(), "'split' is not allowed in pipelines");
    for (Expr *W : cast<SplitStmt>(S)->getWeights())
      if (checkExpr(W, Ctx) != ScalarType::Int)
        Diags.error(W->getLoc(), "roundrobin weight must be int");
    return;
  }
  case Stmt::Kind::JoinS: {
    if (Ctx != Context::Composite)
      Diags.error(S->getLoc(), "'join' is only allowed in splitjoin bodies");
    for (Expr *W : cast<JoinStmt>(S)->getWeights())
      if (checkExpr(W, Ctx) != ScalarType::Int)
        Diags.error(W->getLoc(), "roundrobin weight must be int");
    return;
  }
  case Stmt::Kind::Enqueue: {
    if (Ctx != Context::Composite ||
        CurCompositeKind != StreamDecl::Kind::FeedbackLoop) {
      Diags.error(S->getLoc(),
                  "'enqueue' is only allowed in feedbackloop bodies");
      return;
    }
    checkExpr(cast<EnqueueStmt>(S)->getValue(), Ctx);
    requireNumeric(cast<EnqueueStmt>(S)->getValue(), "enqueued value");
    return;
  }
  }
}

ScalarType Sema::checkExpr(Expr *E, Context Ctx) {
  if (!E)
    return ScalarType::Void;
  switch (E->getKind()) {
  case Expr::Kind::IntLit:
    E->setType(ScalarType::Int);
    break;
  case Expr::Kind::FloatLit:
    E->setType(ScalarType::Float);
    break;
  case Expr::Kind::BoolLit:
    E->setType(ScalarType::Bool);
    break;
  case Expr::Kind::VarRef: {
    auto *Ref = cast<VarRef>(E);
    VarDecl *D = lookup(Ref->getName());
    if (!D) {
      Diags.error(E->getLoc(), "use of undeclared name '" + Ref->getName() +
                                   "'");
      E->setType(ScalarType::Int);
      break;
    }
    Ref->setDecl(D);
    if (D->isArray()) {
      Diags.error(E->getLoc(),
                  "array '" + Ref->getName() + "' must be indexed");
      E->setType(D->getElemType());
      break;
    }
    E->setType(D->getElemType());
    break;
  }
  case Expr::Kind::ArrayIndex: {
    auto *Ix = cast<ArrayIndex>(E);
    VarRef *Base = Ix->getBase();
    VarDecl *D = lookup(Base->getName());
    if (!D) {
      Diags.error(E->getLoc(),
                  "use of undeclared name '" + Base->getName() + "'");
      E->setType(ScalarType::Int);
      break;
    }
    Base->setDecl(D);
    Base->setType(D->getElemType());
    if (!D->isArray())
      Diags.error(E->getLoc(),
                  "indexing non-array '" + Base->getName() + "'");
    if (checkExpr(Ix->getIndex(), Ctx) != ScalarType::Int)
      Diags.error(Ix->getIndex()->getLoc(), "array index must be int");
    E->setType(D->getElemType());
    break;
  }
  case Expr::Kind::Binary: {
    auto *B = cast<BinaryExpr>(E);
    ScalarType L = checkExpr(B->getLHS(), Ctx);
    ScalarType R = checkExpr(B->getRHS(), Ctx);
    switch (B->getOp()) {
    case BinaryOp::Add:
    case BinaryOp::Sub:
    case BinaryOp::Mul:
    case BinaryOp::Div:
      requireNumeric(B->getLHS(), "operand");
      requireNumeric(B->getRHS(), "operand");
      E->setType(L == ScalarType::Float || R == ScalarType::Float
                     ? ScalarType::Float
                     : ScalarType::Int);
      break;
    case BinaryOp::Rem:
    case BinaryOp::BitAnd:
    case BinaryOp::BitOr:
    case BinaryOp::BitXor:
    case BinaryOp::Shl:
    case BinaryOp::Shr:
      if (L != ScalarType::Int || R != ScalarType::Int)
        Diags.error(E->getLoc(), "operator requires int operands");
      E->setType(ScalarType::Int);
      break;
    case BinaryOp::LogAnd:
    case BinaryOp::LogOr:
      if (L != ScalarType::Bool || R != ScalarType::Bool)
        Diags.error(E->getLoc(), "operator requires boolean operands");
      E->setType(ScalarType::Bool);
      break;
    case BinaryOp::EQ:
    case BinaryOp::NE:
      if (L == ScalarType::Bool && R == ScalarType::Bool) {
        E->setType(ScalarType::Bool);
        break;
      }
      [[fallthrough]];
    case BinaryOp::LT:
    case BinaryOp::LE:
    case BinaryOp::GT:
    case BinaryOp::GE:
      requireNumeric(B->getLHS(), "comparison operand");
      requireNumeric(B->getRHS(), "comparison operand");
      E->setType(ScalarType::Bool);
      break;
    }
    break;
  }
  case Expr::Kind::Unary: {
    auto *U = cast<UnaryExpr>(E);
    ScalarType Ty = checkExpr(U->getSub(), Ctx);
    switch (U->getOp()) {
    case UnaryOp::Neg:
      requireNumeric(U->getSub(), "operand of unary '-'");
      E->setType(Ty);
      break;
    case UnaryOp::LogNot:
      if (Ty != ScalarType::Bool)
        Diags.error(E->getLoc(), "operand of '!' must be boolean");
      E->setType(ScalarType::Bool);
      break;
    case UnaryOp::BitNot:
      if (Ty != ScalarType::Int)
        Diags.error(E->getLoc(), "operand of '~' must be int");
      E->setType(ScalarType::Int);
      break;
    }
    break;
  }
  case Expr::Kind::Assign: {
    auto *A = cast<AssignExpr>(E);
    ScalarType TargetTy = checkExpr(A->getTarget(), Ctx);
    ScalarType ValueTy = checkExpr(A->getValue(), Ctx);
    Expr *Target = A->getTarget();
    VarDecl *D = nullptr;
    if (auto *Ref = dyn_cast<VarRef>(Target))
      D = Ref->getDecl();
    else if (auto *Ix = dyn_cast<ArrayIndex>(Target))
      D = Ix->getBase()->getDecl();
    else
      Diags.error(E->getLoc(), "assignment target must be a variable");
    if (D && D->getScope() == VarDecl::Scope::Param)
      Diags.error(E->getLoc(), "cannot assign to parameter '" + D->getName() +
                                   "'");
    if (A->getOp() != AssignExpr::Op::Assign) {
      requireNumeric(A->getTarget(), "compound assignment target");
      requireNumeric(A->getValue(), "compound assignment value");
    }
    requireConvertible(ValueTy, TargetTy, E->getLoc(), "assigned value");
    E->setType(TargetTy);
    break;
  }
  case Expr::Kind::Call:
    E->setType(checkCall(cast<CallExpr>(E), Ctx));
    break;
  case Expr::Kind::Cast: {
    auto *C = cast<CastExpr>(E);
    checkExpr(C->getSub(), Ctx);
    requireNumeric(C->getSub(), "cast operand");
    if (!isNumeric(C->getTo()))
      Diags.error(E->getLoc(), "cast target must be int or float");
    E->setType(C->getTo());
    break;
  }
  }
  return E->getType();
}

ScalarType Sema::checkCall(CallExpr *C, Context Ctx) {
  static const std::unordered_map<std::string, BuiltinFn> Builtins = {
      {"push", BuiltinFn::Push},   {"pop", BuiltinFn::Pop},
      {"peek", BuiltinFn::Peek},   {"sin", BuiltinFn::Sin},
      {"cos", BuiltinFn::Cos},     {"tan", BuiltinFn::Tan},
      {"atan", BuiltinFn::Atan},   {"atan2", BuiltinFn::Atan2},
      {"exp", BuiltinFn::Exp},     {"log", BuiltinFn::Log},
      {"sqrt", BuiltinFn::Sqrt},   {"abs", BuiltinFn::Abs},
      {"floor", BuiltinFn::Floor}, {"ceil", BuiltinFn::Ceil},
      {"pow", BuiltinFn::Pow},     {"fmod", BuiltinFn::Fmod},
      {"min", BuiltinFn::Min},     {"max", BuiltinFn::Max},
  };
  auto It = Builtins.find(C->getCallee());
  if (It == Builtins.end()) {
    Diags.error(C->getLoc(), "unknown function '" + C->getCallee() + "'");
    return ScalarType::Void;
  }
  BuiltinFn Fn = It->second;
  C->setBuiltin(Fn);

  auto ExpectArgs = [&](unsigned N) {
    if (C->getArgs().size() == N)
      return true;
    std::ostringstream OS;
    OS << "'" << C->getCallee() << "' expects " << N << " argument(s), got "
       << C->getArgs().size();
    Diags.error(C->getLoc(), OS.str());
    return false;
  };

  for (Expr *Arg : C->getArgs())
    checkExpr(Arg, Ctx);

  switch (Fn) {
  case BuiltinFn::Push: {
    if (Ctx != Context::Work)
      Diags.error(C->getLoc(), "push is only allowed in work functions");
    else if (!CurFilter || CurFilter->getOutType() == ScalarType::Void)
      Diags.error(C->getLoc(), "push in a filter without output");
    if (ExpectArgs(1) && CurFilter)
      requireConvertible(C->getArgs()[0]->getType(), CurFilter->getOutType(),
                         C->getLoc(), "pushed value");
    return ScalarType::Void;
  }
  case BuiltinFn::Pop: {
    if (Ctx != Context::Work)
      Diags.error(C->getLoc(), "pop is only allowed in work functions");
    else if (!CurFilter || CurFilter->getInType() == ScalarType::Void)
      Diags.error(C->getLoc(), "pop in a filter without input");
    ExpectArgs(0);
    return CurFilter ? CurFilter->getInType() : ScalarType::Float;
  }
  case BuiltinFn::Peek: {
    if (Ctx != Context::Work)
      Diags.error(C->getLoc(), "peek is only allowed in work functions");
    else if (!CurFilter || CurFilter->getInType() == ScalarType::Void)
      Diags.error(C->getLoc(), "peek in a filter without input");
    if (ExpectArgs(1) && C->getArgs()[0]->getType() != ScalarType::Int)
      Diags.error(C->getLoc(), "peek index must be int");
    return CurFilter ? CurFilter->getInType() : ScalarType::Float;
  }
  case BuiltinFn::Atan2:
  case BuiltinFn::Pow:
  case BuiltinFn::Fmod:
    if (ExpectArgs(2)) {
      requireNumeric(C->getArgs()[0], "argument");
      requireNumeric(C->getArgs()[1], "argument");
    }
    return ScalarType::Float;
  case BuiltinFn::Min:
  case BuiltinFn::Max:
    if (ExpectArgs(2)) {
      requireNumeric(C->getArgs()[0], "argument");
      requireNumeric(C->getArgs()[1], "argument");
      if (C->getArgs()[0]->getType() == ScalarType::Int &&
          C->getArgs()[1]->getType() == ScalarType::Int)
        return ScalarType::Int;
    }
    return ScalarType::Float;
  case BuiltinFn::Abs:
    if (ExpectArgs(1)) {
      requireNumeric(C->getArgs()[0], "argument");
      if (C->getArgs()[0]->getType() == ScalarType::Int)
        return ScalarType::Int;
    }
    return ScalarType::Float;
  default:
    if (ExpectArgs(1))
      requireNumeric(C->getArgs()[0], "argument");
    return ScalarType::Float;
  }
}

bool laminar::analyzeProgram(Program &P, DiagnosticEngine &Diags) {
  return Sema(P, Diags).run();
}
