//===--- AST.h - Abstract syntax for the StreamIt subset -------*- C++ -*-===//
//
// Nodes are allocated in an ASTContext arena and referenced by plain
// pointers. The hierarchy is closed and uses kind tags with classof for
// isa/cast/dyn_cast.
//
//===----------------------------------------------------------------------===//

#ifndef LAMINAR_FRONTEND_AST_H
#define LAMINAR_FRONTEND_AST_H

#include "support/Casting.h"
#include "support/SourceLoc.h"
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace laminar {
namespace ast {

/// Scalar types of the surface language. Bool appears only as the type
/// of conditions; stream channels carry Int or Float.
enum class ScalarType { Void, Int, Float, Bool };

const char *scalarTypeName(ScalarType Ty);

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

class Expr {
public:
  enum class Kind {
    IntLit,
    FloatLit,
    BoolLit,
    VarRef,
    ArrayIndex,
    Binary,
    Unary,
    Assign,
    Call,
    Cast,
  };

  virtual ~Expr() = default;
  Kind getKind() const { return TheKind; }
  SourceLoc getLoc() const { return Loc; }

  /// Result type, set by semantic analysis.
  ScalarType getType() const { return Ty; }
  void setType(ScalarType T) { Ty = T; }

protected:
  Expr(Kind K, SourceLoc Loc) : TheKind(K), Loc(Loc) {}

private:
  Kind TheKind;
  SourceLoc Loc;
  ScalarType Ty = ScalarType::Void;
};

class IntLit : public Expr {
public:
  IntLit(int64_t V, SourceLoc Loc) : Expr(Kind::IntLit, Loc), V(V) {}
  int64_t getValue() const { return V; }
  static bool classof(const Expr *E) { return E->getKind() == Kind::IntLit; }

private:
  int64_t V;
};

class FloatLit : public Expr {
public:
  FloatLit(double V, SourceLoc Loc) : Expr(Kind::FloatLit, Loc), V(V) {}
  double getValue() const { return V; }
  static bool classof(const Expr *E) {
    return E->getKind() == Kind::FloatLit;
  }

private:
  double V;
};

class BoolLit : public Expr {
public:
  BoolLit(bool V, SourceLoc Loc) : Expr(Kind::BoolLit, Loc), V(V) {}
  bool getValue() const { return V; }
  static bool classof(const Expr *E) { return E->getKind() == Kind::BoolLit; }

private:
  bool V;
};

class VarDecl;

/// A use of a named variable (parameter, field or local). Sema resolves
/// the name to its declaration.
class VarRef : public Expr {
public:
  VarRef(std::string Name, SourceLoc Loc)
      : Expr(Kind::VarRef, Loc), Name(std::move(Name)) {}

  const std::string &getName() const { return Name; }
  VarDecl *getDecl() const { return Decl; }
  void setDecl(VarDecl *D) { Decl = D; }

  static bool classof(const Expr *E) { return E->getKind() == Kind::VarRef; }

private:
  std::string Name;
  VarDecl *Decl = nullptr;
};

/// Base[Index] where Base must be a VarRef naming an array variable.
class ArrayIndex : public Expr {
public:
  ArrayIndex(VarRef *Base, Expr *Index, SourceLoc Loc)
      : Expr(Kind::ArrayIndex, Loc), Base(Base), Index(Index) {}

  VarRef *getBase() const { return Base; }
  Expr *getIndex() const { return Index; }

  static bool classof(const Expr *E) {
    return E->getKind() == Kind::ArrayIndex;
  }

private:
  VarRef *Base;
  Expr *Index;
};

enum class BinaryOp {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  BitAnd,
  BitOr,
  BitXor,
  Shl,
  Shr,
  LogAnd,
  LogOr,
  EQ,
  NE,
  LT,
  LE,
  GT,
  GE,
};

const char *binaryOpSpelling(BinaryOp Op);

class BinaryExpr : public Expr {
public:
  BinaryExpr(BinaryOp Op, Expr *LHS, Expr *RHS, SourceLoc Loc)
      : Expr(Kind::Binary, Loc), Op(Op), LHS(LHS), RHS(RHS) {}

  BinaryOp getOp() const { return Op; }
  Expr *getLHS() const { return LHS; }
  Expr *getRHS() const { return RHS; }

  static bool classof(const Expr *E) { return E->getKind() == Kind::Binary; }

private:
  BinaryOp Op;
  Expr *LHS;
  Expr *RHS;
};

enum class UnaryOp { Neg, LogNot, BitNot };

class UnaryExpr : public Expr {
public:
  UnaryExpr(UnaryOp Op, Expr *Sub, SourceLoc Loc)
      : Expr(Kind::Unary, Loc), Op(Op), Sub(Sub) {}

  UnaryOp getOp() const { return Op; }
  Expr *getSub() const { return Sub; }

  static bool classof(const Expr *E) { return E->getKind() == Kind::Unary; }

private:
  UnaryOp Op;
  Expr *Sub;
};

/// Assignment (possibly compound). The target is a VarRef or ArrayIndex.
/// `x++` / `x--` are parsed as `x += 1` / `x -= 1`.
class AssignExpr : public Expr {
public:
  enum class Op { Assign, Add, Sub, Mul, Div };

  AssignExpr(Op TheOp, Expr *Target, Expr *Value, SourceLoc Loc)
      : Expr(Kind::Assign, Loc), TheOp(TheOp), Target(Target), Value(Value) {}

  Op getOp() const { return TheOp; }
  Expr *getTarget() const { return Target; }
  Expr *getValue() const { return Value; }

  static bool classof(const Expr *E) { return E->getKind() == Kind::Assign; }

private:
  Op TheOp;
  Expr *Target;
  Expr *Value;
};

/// Builtins callable from work/init code. Push/Pop/Peek are the stream
/// primitives; the rest are math helpers. Abs/Min/Max are overloaded on
/// int/float (sema picks the typed variant during lowering).
enum class BuiltinFn {
  Push,
  Pop,
  Peek,
  Sin,
  Cos,
  Tan,
  Atan,
  Atan2,
  Exp,
  Log,
  Sqrt,
  Abs,
  Floor,
  Ceil,
  Pow,
  Fmod,
  Min,
  Max,
};

class CallExpr : public Expr {
public:
  CallExpr(std::string Callee, std::vector<Expr *> Args, SourceLoc Loc)
      : Expr(Kind::Call, Loc), Callee(std::move(Callee)),
        Args(std::move(Args)) {}

  const std::string &getCallee() const { return Callee; }
  const std::vector<Expr *> &getArgs() const { return Args; }

  BuiltinFn getBuiltin() const { return Fn; }
  void setBuiltin(BuiltinFn F) { Fn = F; }

  static bool classof(const Expr *E) { return E->getKind() == Kind::Call; }

private:
  std::string Callee;
  std::vector<Expr *> Args;
  BuiltinFn Fn = BuiltinFn::Pop;
};

/// Explicit cast `(int)e` or `(float)e`.
class CastExpr : public Expr {
public:
  CastExpr(ScalarType To, Expr *Sub, SourceLoc Loc)
      : Expr(Kind::Cast, Loc), To(To), Sub(Sub) {}

  ScalarType getTo() const { return To; }
  Expr *getSub() const { return Sub; }

  static bool classof(const Expr *E) { return E->getKind() == Kind::Cast; }

private:
  ScalarType To;
  Expr *Sub;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

class Stmt {
public:
  enum class Kind {
    Decl,
    ExprS,
    If,
    For,
    While,
    Block,
    Add,
    SplitS,
    JoinS,
    Enqueue,
  };

  virtual ~Stmt() = default;
  Kind getKind() const { return TheKind; }
  SourceLoc getLoc() const { return Loc; }

protected:
  Stmt(Kind K, SourceLoc Loc) : TheKind(K), Loc(Loc) {}

private:
  Kind TheKind;
  SourceLoc Loc;
};

/// A variable declaration: parameter, filter field or local. Array
/// variables carry a size expression (compile-time constant).
class VarDecl {
public:
  enum class Scope { Param, Field, Local };

  VarDecl(std::string Name, ScalarType Elem, Expr *ArraySize, Expr *Init,
          Scope S, SourceLoc Loc)
      : Name(std::move(Name)), Elem(Elem), ArraySize(ArraySize), Init(Init),
        S(S), Loc(Loc) {}

  const std::string &getName() const { return Name; }
  ScalarType getElemType() const { return Elem; }
  bool isArray() const { return ArraySize != nullptr; }
  Expr *getArraySize() const { return ArraySize; }
  Expr *getInit() const { return Init; }
  Scope getScope() const { return S; }
  SourceLoc getLoc() const { return Loc; }

private:
  std::string Name;
  ScalarType Elem;
  Expr *ArraySize;
  Expr *Init;
  Scope S;
  SourceLoc Loc;
};

class DeclStmt : public Stmt {
public:
  DeclStmt(VarDecl *D, SourceLoc Loc) : Stmt(Kind::Decl, Loc), D(D) {}
  VarDecl *getDecl() const { return D; }
  static bool classof(const Stmt *S) { return S->getKind() == Kind::Decl; }

private:
  VarDecl *D;
};

class ExprStmt : public Stmt {
public:
  ExprStmt(Expr *E, SourceLoc Loc) : Stmt(Kind::ExprS, Loc), E(E) {}
  Expr *getExpr() const { return E; }
  static bool classof(const Stmt *S) { return S->getKind() == Kind::ExprS; }

private:
  Expr *E;
};

class BlockStmt : public Stmt {
public:
  BlockStmt(std::vector<Stmt *> Body, SourceLoc Loc)
      : Stmt(Kind::Block, Loc), Body(std::move(Body)) {}
  const std::vector<Stmt *> &getBody() const { return Body; }
  static bool classof(const Stmt *S) { return S->getKind() == Kind::Block; }

private:
  std::vector<Stmt *> Body;
};

class IfStmt : public Stmt {
public:
  IfStmt(Expr *Cond, Stmt *Then, Stmt *Else, SourceLoc Loc)
      : Stmt(Kind::If, Loc), Cond(Cond), Then(Then), Else(Else) {}
  Expr *getCond() const { return Cond; }
  Stmt *getThen() const { return Then; }
  Stmt *getElse() const { return Else; }
  static bool classof(const Stmt *S) { return S->getKind() == Kind::If; }

private:
  Expr *Cond;
  Stmt *Then;
  Stmt *Else; // may be null
};

class ForStmt : public Stmt {
public:
  ForStmt(Stmt *Init, Expr *Cond, Expr *Step, Stmt *Body, SourceLoc Loc)
      : Stmt(Kind::For, Loc), Init(Init), Cond(Cond), Step(Step), Body(Body) {
  }
  Stmt *getInit() const { return Init; } // may be null
  Expr *getCond() const { return Cond; } // may be null (infinite: rejected)
  Expr *getStep() const { return Step; } // may be null
  Stmt *getBody() const { return Body; }
  static bool classof(const Stmt *S) { return S->getKind() == Kind::For; }

private:
  Stmt *Init;
  Expr *Cond;
  Expr *Step;
  Stmt *Body;
};

class WhileStmt : public Stmt {
public:
  WhileStmt(Expr *Cond, Stmt *Body, SourceLoc Loc)
      : Stmt(Kind::While, Loc), Cond(Cond), Body(Body) {}
  Expr *getCond() const { return Cond; }
  Stmt *getBody() const { return Body; }
  static bool classof(const Stmt *S) { return S->getKind() == Kind::While; }

private:
  Expr *Cond;
  Stmt *Body;
};

/// `add Child(args...);` inside a composite body. In feedbackloops the
/// forward and backward paths are written `body Child(...)` and
/// `loop Child(...)`, represented here by the role.
class AddStmt : public Stmt {
public:
  enum class Role { Plain, Body, Loop };

  AddStmt(std::string Child, std::vector<Expr *> Args, Role R,
          SourceLoc Loc)
      : Stmt(Kind::Add, Loc), Child(std::move(Child)), Args(std::move(Args)),
        R(R) {}
  const std::string &getChild() const { return Child; }
  const std::vector<Expr *> &getArgs() const { return Args; }
  Role getRole() const { return R; }
  static bool classof(const Stmt *S) { return S->getKind() == Kind::Add; }

private:
  std::string Child;
  std::vector<Expr *> Args;
  Role R;
};

/// `enqueue expr;` inside a feedbackloop: one initial token on the
/// feedback channel, available before the loop path produces anything.
class EnqueueStmt : public Stmt {
public:
  EnqueueStmt(Expr *Value, SourceLoc Loc)
      : Stmt(Kind::Enqueue, Loc), Value(Value) {}
  Expr *getValue() const { return Value; }
  static bool classof(const Stmt *S) {
    return S->getKind() == Kind::Enqueue;
  }

private:
  Expr *Value;
};

/// `split duplicate;` or `split roundrobin(w0, w1, ...);`.
class SplitStmt : public Stmt {
public:
  enum class SplitKind { Duplicate, RoundRobin };

  SplitStmt(SplitKind K, std::vector<Expr *> Weights, SourceLoc Loc)
      : Stmt(Kind::SplitS, Loc), K(K), Weights(std::move(Weights)) {}
  SplitKind getSplitKind() const { return K; }
  const std::vector<Expr *> &getWeights() const { return Weights; }
  static bool classof(const Stmt *S) { return S->getKind() == Kind::SplitS; }

private:
  SplitKind K;
  std::vector<Expr *> Weights;
};

/// `join roundrobin(w0, w1, ...);`.
class JoinStmt : public Stmt {
public:
  JoinStmt(std::vector<Expr *> Weights, SourceLoc Loc)
      : Stmt(Kind::JoinS, Loc), Weights(std::move(Weights)) {}
  const std::vector<Expr *> &getWeights() const { return Weights; }
  static bool classof(const Stmt *S) { return S->getKind() == Kind::JoinS; }

private:
  std::vector<Expr *> Weights;
};

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

/// Common base of filter and composite declarations.
class StreamDecl {
public:
  enum class Kind { Filter, Pipeline, SplitJoin, FeedbackLoop };

  virtual ~StreamDecl() = default;

  Kind getKind() const { return TheKind; }
  const std::string &getName() const { return Name; }
  ScalarType getInType() const { return InTy; }
  ScalarType getOutType() const { return OutTy; }
  const std::vector<VarDecl *> &getParams() const { return Params; }
  SourceLoc getLoc() const { return Loc; }

protected:
  StreamDecl(Kind K, std::string Name, ScalarType InTy, ScalarType OutTy,
             std::vector<VarDecl *> Params, SourceLoc Loc)
      : TheKind(K), Name(std::move(Name)), InTy(InTy), OutTy(OutTy),
        Params(std::move(Params)), Loc(Loc) {}

private:
  Kind TheKind;
  std::string Name;
  ScalarType InTy;
  ScalarType OutTy;
  std::vector<VarDecl *> Params;
  SourceLoc Loc;
};

/// A filter: fields, an optional init block, and a work function with
/// declared rates. Rate expressions may reference parameters; they are
/// evaluated during elaboration.
class FilterDecl : public StreamDecl {
public:
  FilterDecl(std::string Name, ScalarType InTy, ScalarType OutTy,
             std::vector<VarDecl *> Params, std::vector<VarDecl *> Fields,
             BlockStmt *InitBody, Expr *PushRate, Expr *PopRate,
             Expr *PeekRate, BlockStmt *WorkBody, SourceLoc Loc)
      : StreamDecl(Kind::Filter, std::move(Name), InTy, OutTy,
                   std::move(Params), Loc),
        Fields(std::move(Fields)), InitBody(InitBody), PushRate(PushRate),
        PopRate(PopRate), PeekRate(PeekRate), WorkBody(WorkBody) {}

  const std::vector<VarDecl *> &getFields() const { return Fields; }
  BlockStmt *getInitBody() const { return InitBody; } // may be null
  Expr *getPushRate() const { return PushRate; }      // may be null (0)
  Expr *getPopRate() const { return PopRate; }        // may be null (0)
  Expr *getPeekRate() const { return PeekRate; }      // may be null (=pop)
  BlockStmt *getWorkBody() const { return WorkBody; }

  static bool classof(const StreamDecl *D) {
    return D->getKind() == Kind::Filter;
  }

private:
  std::vector<VarDecl *> Fields;
  BlockStmt *InitBody;
  Expr *PushRate;
  Expr *PopRate;
  Expr *PeekRate;
  BlockStmt *WorkBody;
};

/// A pipeline or splitjoin; the body is executed at elaboration time.
class CompositeDecl : public StreamDecl {
public:
  CompositeDecl(Kind K, std::string Name, ScalarType InTy, ScalarType OutTy,
                std::vector<VarDecl *> Params, BlockStmt *Body, SourceLoc Loc)
      : StreamDecl(K, std::move(Name), InTy, OutTy, std::move(Params), Loc),
        Body(Body) {}

  BlockStmt *getBody() const { return Body; }

  static bool classof(const StreamDecl *D) {
    return D->getKind() != Kind::Filter;
  }

private:
  BlockStmt *Body;
};

//===----------------------------------------------------------------------===//
// Program and arena
//===----------------------------------------------------------------------===//

/// Owns every AST node of one parsed program.
class Program {
public:
  const std::vector<StreamDecl *> &getDecls() const { return Decls; }
  StreamDecl *findDecl(const std::string &Name) const {
    auto It = DeclsByName.find(Name);
    return It == DeclsByName.end() ? nullptr : It->second;
  }

  void addDecl(StreamDecl *D) {
    Decls.push_back(D);
    DeclsByName[D->getName()] = D;
  }

  /// Allocates a node in the arena.
  template <typename T, typename... ArgTs> T *create(ArgTs &&...Args) {
    auto Node = std::make_unique<T>(std::forward<ArgTs>(Args)...);
    T *Raw = Node.get();
    Arena.push_back(
        std::unique_ptr<void, void (*)(void *)>(Node.release(), [](void *P) {
          delete static_cast<T *>(P);
        }));
    return Raw;
  }

private:
  std::vector<StreamDecl *> Decls;
  std::unordered_map<std::string, StreamDecl *> DeclsByName;
  std::vector<std::unique_ptr<void, void (*)(void *)>> Arena;
};

} // namespace ast
} // namespace laminar

#endif // LAMINAR_FRONTEND_AST_H
