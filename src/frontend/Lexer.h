//===--- Lexer.h - Tokenizer for the StreamIt subset -----------*- C++ -*-===//

#ifndef LAMINAR_FRONTEND_LEXER_H
#define LAMINAR_FRONTEND_LEXER_H

#include "support/Diagnostics.h"
#include "support/SourceLoc.h"
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace laminar {

enum class TokKind {
  Eof,
  Identifier,
  IntLiteral,
  FloatLiteral,
  // Keywords.
  KwVoid,
  KwInt,
  KwFloat,
  KwBoolean,
  KwFilter,
  KwPipeline,
  KwSplitjoin,
  KwFeedbackloop,
  KwSplit,
  KwJoin,
  KwDuplicate,
  KwRoundrobin,
  KwAdd,
  KwBody,
  KwLoop,
  KwEnqueue,
  KwWork,
  KwInit,
  KwPush,
  KwPop,
  KwPeek,
  KwIf,
  KwElse,
  KwFor,
  KwWhile,
  KwTrue,
  KwFalse,
  // Punctuation and operators.
  Arrow, // ->
  LBrace,
  RBrace,
  LParen,
  RParen,
  LBracket,
  RBracket,
  Semi,
  Comma,
  Assign,
  PlusAssign,
  MinusAssign,
  StarAssign,
  SlashAssign,
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Amp,
  Pipe,
  Caret,
  Tilde,
  Shl,
  Shr,
  AmpAmp,
  PipePipe,
  Bang,
  EqEq,
  NotEq,
  Less,
  LessEq,
  Greater,
  GreaterEq,
  PlusPlus,
  MinusMinus,
};

/// Printable spelling of a token kind for diagnostics.
const char *tokKindName(TokKind K);

struct Token {
  TokKind Kind = TokKind::Eof;
  SourceLoc Loc;
  std::string Text;   // identifier spelling
  int64_t IntValue = 0;
  double FloatValue = 0;

  bool is(TokKind K) const { return Kind == K; }
};

/// Converts a source buffer into a token stream. Comments (// and /* */)
/// and whitespace are skipped; malformed input produces diagnostics and a
/// best-effort stream.
class Lexer {
public:
  Lexer(std::string Source, DiagnosticEngine &Diags);

  /// Tokenizes the entire buffer (final token is Eof).
  std::vector<Token> lexAll();

private:
  Token next();
  /// One scan attempt; nullopt after consuming an unexpected character
  /// (next() retries in a loop — recursing per byte would overflow the
  /// stack on adversarial input).
  std::optional<Token> nextImpl();
  char peek(unsigned Ahead = 0) const;
  char advance();
  bool match(char C);
  SourceLoc loc() const { return SourceLoc(Line, Col); }
  Token make(TokKind K, SourceLoc Loc) const;
  Token lexNumber(SourceLoc Start);
  Token lexIdentifier(SourceLoc Start);

  std::string Source;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Col = 1;
};

} // namespace laminar

#endif // LAMINAR_FRONTEND_LEXER_H
