//===--- Instance.h - Per-instance runtime state ---------------*- C++ -*-===//
//
// The instance half of the plan/instance split: everything one running
// graph owns privately — a MemoryImage seeded from the shared plan's
// module, an input-batch job queue, an SPSC slab queue of completed
// output batches, a CancellationToken, and per-instance telemetry.
// Spawning costs exactly one MemoryImage construction (O(state size));
// no compile phase ever runs here, which ServerTest asserts via the
// server's stats registry.
//
// Execution model: the scheduler's worker pool calls runPending() on
// at most one worker at a time per instance (an instance is enqueued
// to the pool only on the idle->scheduled transition, and re-enqueued
// by the worker that drained it if batches arrived meanwhile). Each
// batch runs the slab sequence of the plan — for a parallel-compiled
// plan the partitions of one slab execute in partition order on the
// one worker, which is sequential dataflow order and therefore
// bit-exact with the solo run; the server scales by running many
// *instances* in parallel, not by splitting one instance across
// workers (docs/SERVER.md discusses the tradeoff).
//
// Fault containment mirrors the parallel runtime: a faulting batch
// publishes a structured laminar-fault-report-v1, poisons the output
// slab queue (pullBatch consumers drain completed slabs, then fail
// with the origin fault), fails every queued batch, and leaves the
// sibling instances and the server untouched.
//
//===----------------------------------------------------------------------===//

#ifndef LAMINAR_SERVER_INSTANCE_H
#define LAMINAR_SERVER_INSTANCE_H

#include "interp/Fault.h"
#include "interp/Interpreter.h"
#include "parallel/SpscQueue.h"
#include "profile/Profile.h"
#include "server/CompiledPlan.h"
#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>

namespace laminar {
namespace server {

/// What pushBatch / pullBatch report. Values are stable — the C API
/// (include/laminar.h) mirrors them one-to-one.
enum class BatchStatus {
  Ok = 0,
  /// Token count does not match the plan's rate contract.
  BadBatch,
  /// The instance faulted; the report is available via faultReport().
  Faulted,
  /// pullBatch with no completed batch and none in flight.
  Empty,
  /// The instance was cancelled (explicitly or by the deadline).
  Cancelled,
  /// Per-instance pending-batch backlog is full; pull before pushing.
  Backlog,
};

const char *batchStatusName(BatchStatus S);

class Instance {
public:
  /// Completed output slabs pullBatch can drain before blocking.
  static constexpr size_t OutQueueSlabs = 1024;
  /// Queued-but-not-started input batches before pushBatch refuses.
  static constexpr size_t MaxPendingBatches = 1024;

  Instance(std::shared_ptr<const CompiledPlan> Plan, uint64_t Id);
  ~Instance();

  uint64_t id() const { return Id; }
  const CompiledPlan &plan() const { return *Plan; }
  const std::shared_ptr<const CompiledPlan> &planRef() const {
    return Plan;
  }

  /// Validates \p In against the rate contract and queues it for
  /// \p Iterations steady iterations. The first batch also covers the
  /// one-time @init input (inputForInit tokens before the per-iteration
  /// tokens). Zero-copy: the viewed buffer is read in place by the
  /// worker and must stay valid until the batch's outputs have been
  /// pulled. Returns Ok when queued; the caller must then hand the
  /// instance to the scheduler iff *NeedsSchedule came back true.
  BatchStatus pushBatch(interp::TokenView In, int64_t Iterations,
                        bool *NeedsSchedule, std::string *Err = nullptr);

  /// Pops the oldest completed batch into \p Out (replacing its
  /// contents). Blocks on a condition variable while a batch is in
  /// flight (woken when a batch is published, the instance faults, or
  /// the queue drains to idle); returns Empty immediately when nothing
  /// is queued, running, or completed.
  BatchStatus pullBatch(interp::TokenStream &Out);

  /// Fails every queued batch with Cancelled and poisons the output
  /// queue. The server calls this when a successfully pushed batch can
  /// no longer be scheduled (the instance was freed, or the pool is
  /// stopping, between push and enqueue) so no worker will ever run
  /// it — without this, pullers would wait forever on InFlight.
  void failUnscheduled(const std::string &Reason);

  /// Cooperative cancel: the executor observes the token within 1024
  /// steps; queued batches fail with Cancelled.
  void cancel() { Cancel.cancel(); }
  bool cancelled() const { return Cancel.isCancelledAcquire(); }

  /// Deadline bookkeeping for the server watchdog: nanosecond
  /// steady-clock stamp of the in-flight batch's start, 0 when idle.
  uint64_t runningSinceNs() const {
    return RunningSince.load(std::memory_order_acquire);
  }

  bool faulted() const { return Faulted.load(std::memory_order_acquire); }
  /// The structured report (laminar-fault-report-v1 via .json()).
  /// Meaningful once faulted() is true; stable after that.
  const interp::RunReport &faultReport() const { return Report; }

  /// Per-instance telemetry in the laminar-runtime-stats-v1 schema
  /// (engine "server-instance", one worker): iterations, batches (as
  /// slabs), firings derived from the static schedule.
  profile::RunProfile runtimeStats() const;

  /// Worker-pool entry point: drains the pending-batch queue. Returns
  /// true if the instance must be re-enqueued (not used by the current
  /// drain-to-empty scheduler, but kept explicit in the contract).
  void runPending();

  /// True while the pool owes this instance a runPending() call.
  bool scheduled() const {
    std::lock_guard<std::mutex> L(M);
    return InFlight;
  }

private:
  struct Batch {
    interp::TokenView In;
    int64_t Iterations = 0;
  };

  /// Executes one batch against the instance memory. Returns false on
  /// fault (Report populated, out queue poisoned).
  bool runBatch(const Batch &B);
  void failPending(interp::FaultKind K, const std::string &Msg);

  std::shared_ptr<const CompiledPlan> Plan;
  uint64_t Id = 0;

  /// Instance memory: one image per instance — the whole point of the
  /// split. Workers access it only during this instance's runPending(),
  /// and runPending() calls never overlap (hand-offs go through the
  /// pool, which is the happens-before edge), so InitDone needs no
  /// synchronization while the telemetry counters — read concurrently
  /// by runtimeStats() — are relaxed atomics.
  interp::MemoryImage Mem;
  bool InitDone = false;
  /// Interpreter steps consumed so far (budget is per-plan, enforced
  /// per batch executor; this is telemetry).
  std::atomic<uint64_t> StepsRetired{0};
  std::atomic<uint64_t> IterationsRun{0};
  std::atomic<uint64_t> BatchesRun{0};

  /// Completed output batches, produced by the (serialized) worker
  /// side and consumed by the caller side — the SPSC contract holds
  /// because instance jobs never overlap and job hand-offs happen
  /// through the pool's mutex. Poisoned on fault, exactly like the
  /// parallel runtime's cut-edge rings.
  parallel::SpscQueue<interp::TokenStream *> OutQ{OutQueueSlabs};

  mutable std::mutex M;
  /// Wakes pullBatch waiters. Producers touch M (even empty-critical-
  /// section) between the state change and the notify, so a consumer
  /// that checked state under M and went to wait cannot miss a wakeup.
  std::condition_variable CV;
  std::deque<Batch> Pending;
  bool InFlight = false;
  /// True once any batch was ever queued — the first batch is the one
  /// that must carry the init-phase input (guarded by M; the worker's
  /// InitDone flag is private to the serialized run side).
  bool EverQueued = false;

  interp::CancellationToken Cancel;
  std::atomic<uint64_t> RunningSince{0};
  std::atomic<bool> Faulted{false};
  interp::RunReport Report;
};

} // namespace server
} // namespace laminar

#endif // LAMINAR_SERVER_INSTANCE_H
