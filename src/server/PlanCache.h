//===--- PlanCache.h - LRU cache of compiled plans -------------*- C++ -*-===//
//
// The compile-once half of the server story: plans are cached under
// (source hash, canonicalized options) so the second request for the
// same graph pays a map lookup, not a compilation. Admission control
// is the compiler's own resource governor — a compile that exceeds the
// configured CompilerLimits is rejected by the pipeline and never
// enters the cache — plus a per-plan byte ceiling for artifacts that
// compiled fine but are too large to be worth pinning.
//
// Eviction is strict LRU over entries, bounded by both an entry count
// and a byte budget. Eviction never invalidates running instances:
// entries hold shared_ptr<const CompiledPlan>, so an evicted plan
// lives until its last instance releases it.
//
// All operations are mutex-guarded (compiles happen *outside* the
// lock; see StreamServer::compile) and every outcome is counted:
// server.cache.hits / misses / evictions / admission-rejects plus the
// bytes/entries gauges surfaced by statsInto().
//
//===----------------------------------------------------------------------===//

#ifndef LAMINAR_SERVER_PLANCACHE_H
#define LAMINAR_SERVER_PLANCACHE_H

#include "server/CompiledPlan.h"
#include "support/Statistics.h"
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace laminar {
namespace server {

struct PlanCacheConfig {
  /// Maximum cached plans (LRU beyond this). 0 disables caching.
  size_t MaxEntries = 64;
  /// Byte budget over CompiledPlan::approxBytes(). 0 = unlimited.
  size_t MaxBytes = 256ull << 20;
  /// Largest single plan admitted. 0 = unlimited.
  size_t MaxPlanBytes = 64ull << 20;
};

class PlanCache {
public:
  explicit PlanCache(const PlanCacheConfig &Cfg) : Cfg(Cfg) {}

  /// Cache lookup. Bumps hits/misses; moves a hit to the LRU front.
  std::shared_ptr<const CompiledPlan> lookup(const PlanKey &K);

  /// Inserts a freshly built plan, evicting LRU entries as needed.
  /// Returns false (counted as an admission reject) when the plan is
  /// larger than MaxPlanBytes or caching is disabled — the caller
  /// still owns a perfectly usable plan, it just is not pinned.
  bool insert(const PlanKey &K, std::shared_ptr<const CompiledPlan> P);

  size_t entries() const;
  size_t bytes() const;

  /// Every cached plan still structurally fingerprint-identical to its
  /// build — the debug-build immutability assertion's workhorse.
  bool verifyPlansImmutable() const;

  /// Folds counters plus the current bytes/entries gauges into \p S
  /// under server.cache.*.
  void statsInto(StatsRegistry &S) const;

private:
  struct Entry {
    PlanKey Key;
    std::shared_ptr<const CompiledPlan> Plan;
  };
  using LruList = std::list<Entry>;

  void evictIfNeededLocked();

  PlanCacheConfig Cfg;
  mutable std::mutex M;
  LruList Lru; // front = most recent
  std::unordered_map<uint64_t, std::vector<LruList::iterator>> Index;
  size_t Bytes = 0;
  uint64_t Hits = 0, Misses = 0, Evictions = 0, AdmissionRejects = 0;
};

} // namespace server
} // namespace laminar

#endif // LAMINAR_SERVER_PLANCACHE_H
