//===--- Server.h - Multi-instance stream server ----------------*- C++ -*-===//
//
// StreamServer is the production front door: it owns the plan cache,
// an instance table, one shared worker pool, and a deadline watchdog.
// Many independent stream programs (instances) run concurrently over
// the same pool; each instance's batches execute serialized on one
// worker at a time (Instance.h), so a K-worker server sustains up to K
// instances making progress at once.
//
// Threading contract:
//  * compile() is thread-safe; cold compiles run outside every lock,
//    so concurrent compiles of *different* keys overlap fully.
//  * pushBatch()/pullBatch()/cancel() are safe from any caller thread
//    (per instance they are one producer / one consumer, which the C
//    API and laminard both satisfy per connection).
//  * the watchdog thread cancels any instance whose in-flight batch
//    exceeds InstanceDeadlineMs; cancellation is cooperative and
//    contained to that instance.
//
// Fault isolation: a faulting instance poisons only its own output
// queue and reports via laminar-fault-report-v1; siblings, the cache,
// and the pool are untouched. The destructor (and shutdown() in
// tests) asserts every cached plan still matches its build-time
// structural fingerprint — the debug-build proof that no instance
// wrote through the shared artifact.
//
//===----------------------------------------------------------------------===//

#ifndef LAMINAR_SERVER_SERVER_H
#define LAMINAR_SERVER_SERVER_H

#include "server/Instance.h"
#include "server/PlanCache.h"
#include <condition_variable>
#include <deque>
#include <thread>
#include <unordered_map>

namespace laminar {
namespace server {

struct ServerConfig {
  /// Pool size; 0 = hardware concurrency (min 1).
  unsigned Workers = 0;
  /// Plan-cache shape (see PlanCacheConfig).
  size_t CacheEntries = 64;
  size_t CacheBytes = 256ull << 20;
  size_t MaxPlanBytes = 64ull << 20;
  /// Per-batch execution deadline enforced by the watchdog; 0 = none.
  uint64_t InstanceDeadlineMs = 0;
  /// Compiler admission control, applied to *every* compile the server
  /// performs (request options cannot widen them — a server governs
  /// its own resources). Also part of the cache key via canonical().
  CompilerLimits Limits;
};

class StreamServer {
public:
  explicit StreamServer(const ServerConfig &Cfg);
  ~StreamServer();

  /// Compile-or-fetch. On a cache hit, zero compiler phases run and no
  /// driver.* counters move (ServerTest pins this by snapshotting
  /// stats()); on a miss the cold compile's phase counters are merged
  /// into the server registry. \p CacheHit reports which path ran.
  std::shared_ptr<const CompiledPlan> compile(const std::string &Source,
                                              PlanOptions Opts,
                                              std::string &Err,
                                              bool *CacheHit = nullptr);

  /// Creates a new instance of \p P — one MemoryImage construction,
  /// O(state size). Never compiles.
  std::shared_ptr<Instance> spawn(std::shared_ptr<const CompiledPlan> P);

  std::shared_ptr<Instance> instance(uint64_t Id) const;

  /// Cancels, unregisters, and drops the server's reference. The
  /// object lives on until outstanding handles (pool jobs, C API
  /// handles) release theirs.
  bool freeInstance(uint64_t Id);

  /// Validates + queues one batch on \p I and schedules it on the pool
  /// when the push made it runnable. This is the only correct way to
  /// feed a server-owned instance.
  BatchStatus pushBatch(Instance &I, interp::TokenView In,
                        int64_t Iterations, std::string *Err = nullptr);

  size_t liveInstances() const;
  const ServerConfig &config() const { return Cfg; }
  const PlanCache &cache() const { return Cache; }

  /// Point-in-time registry: merged cold-compile phase counters plus
  /// server.cache.* / server.instances.* / server.batches.* counters.
  StatsRegistry stats() const;
  std::string statsJson() const;

  /// Fingerprint-checks every cached plan (also run by ~StreamServer
  /// under !NDEBUG).
  bool verifyPlansImmutable() const { return Cache.verifyPlansImmutable(); }

private:
  void workerMain();
  void watchdogMain();
  /// Hands \p I to the pool. Returns false when the pool is stopping
  /// and the job was not queued — the caller must then fail the
  /// instance's pending work itself.
  bool enqueue(std::shared_ptr<Instance> I);

  ServerConfig Cfg;
  PlanCache Cache;

  mutable std::mutex StatsM;
  StatsRegistry Stats; // cold-compile merges + server.* counters

  mutable std::mutex InstM;
  std::unordered_map<uint64_t, std::shared_ptr<Instance>> Instances;
  uint64_t NextId = 1;

  std::mutex PoolM;
  std::condition_variable PoolCV;
  std::deque<std::shared_ptr<Instance>> JobQ;
  bool Stopping = false;
  std::vector<std::thread> Pool;
  /// The watchdog gets its own mutex/CV so PoolCV waiters are only
  /// workers: if it waited on PoolCV, enqueue()'s notify_one could wake
  /// the watchdog instead of an idle worker and the job would sit in
  /// JobQ unserved (a lost wakeup) on an otherwise quiet server.
  std::mutex WatchdogM;
  std::condition_variable WatchdogCV;
  bool WatchdogStop = false;
  std::thread Watchdog;
};

} // namespace server
} // namespace laminar

#endif // LAMINAR_SERVER_SERVER_H
