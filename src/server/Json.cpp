//===--- Json.cpp - Minimal JSON for the laminard wire protocol -----------===//

#include "server/Json.h"
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

using namespace laminar;
using namespace laminar::json;

ValuePtr Value::null() { return std::make_shared<Value>(); }

ValuePtr Value::boolean(bool B) {
  auto V = std::make_shared<Value>();
  V->K = Kind::Bool;
  V->B = B;
  return V;
}

ValuePtr Value::number(double N) {
  auto V = std::make_shared<Value>();
  V->K = Kind::Number;
  V->Num = N;
  return V;
}

ValuePtr Value::str(std::string S) {
  auto V = std::make_shared<Value>();
  V->K = Kind::String;
  V->Str = std::move(S);
  return V;
}

ValuePtr Value::array() {
  auto V = std::make_shared<Value>();
  V->K = Kind::Array;
  return V;
}

ValuePtr Value::object() {
  auto V = std::make_shared<Value>();
  V->K = Kind::Object;
  return V;
}

bool Value::asBool(bool Default) const {
  return K == Kind::Bool ? B : Default;
}

double Value::asNumber(double Default) const {
  return K == Kind::Number ? Num : Default;
}

int64_t Value::asInt(int64_t Default) const {
  if (K != Kind::Number)
    return Default;
  // This feeds untrusted socket input; an out-of-range double-to-int
  // cast is UB, so saturate instead. 2^63 is exactly representable as
  // a double while INT64_MAX is not, hence the asymmetric bounds: the
  // in-range window is [-2^63, 2^63).
  if (std::isnan(Num))
    return Default;
  if (Num >= 9223372036854775808.0)
    return std::numeric_limits<int64_t>::max();
  if (Num < -9223372036854775808.0)
    return std::numeric_limits<int64_t>::min();
  return static_cast<int64_t>(Num);
}

const std::string &Value::asString() const {
  static const std::string Empty;
  return K == Kind::String ? Str : Empty;
}

ValuePtr Value::get(const std::string &Key) const {
  if (K != Kind::Object)
    return null();
  auto It = Obj.find(Key);
  return It == Obj.end() ? null() : It->second;
}

void Value::set(const std::string &Key, ValuePtr V) {
  K = Kind::Object;
  Obj[Key] = std::move(V);
}

std::string json::escape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  return Out;
}

std::string Value::dump() const {
  switch (K) {
  case Kind::Null:
    return "null";
  case Kind::Bool:
    return B ? "true" : "false";
  case Kind::Number: {
    // Integers (the common case on this protocol) print exactly.
    if (std::isfinite(Num) && Num == std::floor(Num) &&
        std::fabs(Num) < 9.0e15) {
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%lld",
                    static_cast<long long>(Num));
      return Buf;
    }
    char Buf[40];
    std::snprintf(Buf, sizeof(Buf), "%.17g", Num);
    return Buf;
  }
  case Kind::String:
    return "\"" + escape(Str) + "\"";
  case Kind::Array: {
    std::string Out = "[";
    for (size_t I = 0; I < Arr.size(); ++I) {
      if (I)
        Out += ",";
      Out += Arr[I]->dump();
    }
    return Out + "]";
  }
  case Kind::Object: {
    std::string Out = "{";
    bool First = true;
    for (const auto &KV : Obj) {
      if (!First)
        Out += ",";
      First = false;
      Out += "\"" + escape(KV.first) + "\":" + KV.second->dump();
    }
    return Out + "}";
  }
  }
  return "null";
}

namespace {

class Parser {
public:
  Parser(const std::string &Text, std::string &Err)
      : S(Text), Err(Err) {}

  ValuePtr run() {
    ValuePtr V = parseValue(0);
    if (!V)
      return nullptr;
    skipWs();
    if (Pos != S.size()) {
      Err = "trailing characters after JSON document";
      return nullptr;
    }
    return V;
  }

private:
  static constexpr int MaxDepth = 64;

  void skipWs() {
    while (Pos < S.size() &&
           (S[Pos] == ' ' || S[Pos] == '\t' || S[Pos] == '\n' ||
            S[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    skipWs();
    if (Pos < S.size() && S[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool literal(const char *Lit) {
    size_t N = 0;
    while (Lit[N])
      ++N;
    if (S.compare(Pos, N, Lit) == 0) {
      Pos += N;
      return true;
    }
    return false;
  }

  ValuePtr fail(const std::string &Msg) {
    Err = Msg + " at offset " + std::to_string(Pos);
    return nullptr;
  }

  ValuePtr parseValue(int Depth) {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    skipWs();
    if (Pos >= S.size())
      return fail("unexpected end of input");
    const char C = S[Pos];
    if (C == '{')
      return parseObject(Depth);
    if (C == '[')
      return parseArray(Depth);
    if (C == '"') {
      std::string Str;
      if (!parseString(Str))
        return nullptr;
      return Value::str(std::move(Str));
    }
    if (C == 't')
      return literal("true") ? Value::boolean(true)
                             : fail("bad literal");
    if (C == 'f')
      return literal("false") ? Value::boolean(false)
                              : fail("bad literal");
    if (C == 'n')
      return literal("null") ? Value::null() : fail("bad literal");
    return parseNumber();
  }

  ValuePtr parseNumber() {
    const size_t Start = Pos;
    if (Pos < S.size() && S[Pos] == '-')
      ++Pos;
    while (Pos < S.size() &&
           (std::isdigit(static_cast<unsigned char>(S[Pos])) ||
            S[Pos] == '.' || S[Pos] == 'e' || S[Pos] == 'E' ||
            S[Pos] == '+' || S[Pos] == '-'))
      ++Pos;
    if (Pos == Start)
      return fail("expected a value");
    char *End = nullptr;
    const std::string Tok = S.substr(Start, Pos - Start);
    const double N = std::strtod(Tok.c_str(), &End);
    if (!End || *End != '\0')
      return fail("malformed number");
    return Value::number(N);
  }

  bool parseString(std::string &Out) {
    if (S[Pos] != '"') {
      fail("expected a string");
      return false;
    }
    ++Pos;
    while (Pos < S.size()) {
      const char C = S[Pos++];
      if (C == '"')
        return true;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= S.size())
        break;
      const char E = S[Pos++];
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'u': {
        if (Pos + 4 > S.size()) {
          fail("truncated \\u escape");
          return false;
        }
        unsigned V = 0;
        for (int I = 0; I < 4; ++I) {
          const char H = S[Pos++];
          V <<= 4;
          if (H >= '0' && H <= '9')
            V |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            V |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            V |= static_cast<unsigned>(H - 'A' + 10);
          else {
            fail("bad \\u escape");
            return false;
          }
        }
        // UTF-8 encode the BMP code point (surrogate pairs are not
        // needed by this protocol; encode them as-is).
        if (V < 0x80) {
          Out += static_cast<char>(V);
        } else if (V < 0x800) {
          Out += static_cast<char>(0xC0 | (V >> 6));
          Out += static_cast<char>(0x80 | (V & 0x3F));
        } else {
          Out += static_cast<char>(0xE0 | (V >> 12));
          Out += static_cast<char>(0x80 | ((V >> 6) & 0x3F));
          Out += static_cast<char>(0x80 | (V & 0x3F));
        }
        break;
      }
      default:
        fail("bad escape");
        return false;
      }
    }
    fail("unterminated string");
    return false;
  }

  ValuePtr parseArray(int Depth) {
    ++Pos; // '['
    auto V = Value::array();
    skipWs();
    if (consume(']'))
      return V;
    for (;;) {
      ValuePtr E = parseValue(Depth + 1);
      if (!E)
        return nullptr;
      V->push(std::move(E));
      if (consume(']'))
        return V;
      if (!consume(','))
        return fail("expected ',' or ']'");
    }
  }

  ValuePtr parseObject(int Depth) {
    ++Pos; // '{'
    auto V = Value::object();
    skipWs();
    if (consume('}'))
      return V;
    for (;;) {
      skipWs();
      std::string Key;
      if (Pos >= S.size() || S[Pos] != '"' || !parseString(Key))
        return fail("expected an object key");
      if (!consume(':'))
        return fail("expected ':'");
      ValuePtr E = parseValue(Depth + 1);
      if (!E)
        return nullptr;
      V->set(Key, std::move(E));
      if (consume('}'))
        return V;
      if (!consume(','))
        return fail("expected ',' or '}'");
    }
  }

  const std::string &S;
  std::string &Err;
  size_t Pos = 0;
};

} // namespace

ValuePtr json::parse(const std::string &Text, std::string &Err) {
  return Parser(Text, Err).run();
}
