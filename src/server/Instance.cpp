//===--- Instance.cpp - Per-instance runtime state ------------------------===//

#include "server/Instance.h"
#include <thread>

using namespace laminar;
using namespace laminar::interp;
using namespace laminar::server;

const char *server::batchStatusName(BatchStatus S) {
  switch (S) {
  case BatchStatus::Ok:
    return "ok";
  case BatchStatus::BadBatch:
    return "bad-batch";
  case BatchStatus::Faulted:
    return "faulted";
  case BatchStatus::Empty:
    return "empty";
  case BatchStatus::Cancelled:
    return "cancelled";
  case BatchStatus::Backlog:
    return "backlog";
  }
  return "unknown";
}

Instance::Instance(std::shared_ptr<const CompiledPlan> P, uint64_t Id)
    : Plan(std::move(P)), Id(Id), Mem(Plan->module()) {}

Instance::~Instance() {
  // The server guarantees no worker is inside runPending() by the time
  // an instance is destroyed (the pool is drained or the instance map
  // holds the last reference); drain the completed-batch queue.
  TokenStream *S = nullptr;
  while (OutQ.tryPop(S))
    delete S;
}

BatchStatus Instance::pushBatch(TokenView In, int64_t Iterations,
                                bool *NeedsSchedule, std::string *Err) {
  if (NeedsSchedule)
    *NeedsSchedule = false;
  if (Faulted.load(std::memory_order_acquire))
    return Report.FirstFault.Kind == FaultKind::Cancelled
               ? BatchStatus::Cancelled
               : BatchStatus::Faulted;
  if (Cancel.isCancelledAcquire())
    return BatchStatus::Cancelled;
  if (Iterations < 0 || In.Ty != Plan->inputType()) {
    if (Err)
      *Err = In.Ty != Plan->inputType()
                 ? "batch token type does not match the plan's input type"
                 : "negative iteration count";
    return BatchStatus::BadBatch;
  }
  std::lock_guard<std::mutex> L(M);
  // Re-check under the lock: failPending clears Pending under this
  // mutex, so a push racing a fault either lands before (and is
  // cleared) or observes Faulted here.
  if (Faulted.load(std::memory_order_acquire))
    return Report.FirstFault.Kind == FaultKind::Cancelled
               ? BatchStatus::Cancelled
               : BatchStatus::Faulted;
  // Rate contract: the first batch ever queued carries the one-time
  // init input in front of the per-iteration tokens.
  const bool FirstBatch = !EverQueued;
  bool Overflow = true;
  int64_t Need = 0;
  if (auto SteadyNeed = checkedMul(Plan->inputPerIter(), Iterations)) {
    if (auto Total = checkedAdd(FirstBatch ? Plan->inputForInit() : 0,
                                *SteadyNeed)) {
      Need = *Total;
      Overflow = false;
    }
  }
  if (Overflow || Need < 0 || In.size() != static_cast<size_t>(Need)) {
    if (Err)
      *Err = "batch carries " + std::to_string(In.size()) +
             " token(s); this plan needs " +
             (Overflow ? std::string("(overflow)") : std::to_string(Need)) +
             " for " + std::to_string(Iterations) + " iteration(s)" +
             (FirstBatch ? " plus the init phase" : "");
    return BatchStatus::BadBatch;
  }
  if (Pending.size() >= MaxPendingBatches)
    return BatchStatus::Backlog;
  EverQueued = true;
  Pending.push_back(Batch{In, Iterations});
  if (!InFlight) {
    InFlight = true;
    if (NeedsSchedule)
      *NeedsSchedule = true;
  }
  return BatchStatus::Ok;
}

BatchStatus Instance::pullBatch(TokenStream &Out) {
  // M is held across the checks and released only inside CV.wait, so a
  // producer that changes state and then touches M before notifying
  // cannot slip a wakeup between our check and our wait.
  std::unique_lock<std::mutex> L(M);
  for (;;) {
    TokenStream *S = nullptr;
    if (OutQ.tryPop(S)) {
      Out = std::move(*S);
      delete S;
      return BatchStatus::Ok;
    }
    if (OutQ.poisoned()) {
      // Drain-then-fail, exactly like the parallel runtime's rings:
      // slabs completed before the fault are still delivered.
      if (OutQ.tryPop(S)) {
        Out = std::move(*S);
        delete S;
        return BatchStatus::Ok;
      }
      return Report.FirstFault.Kind == FaultKind::Cancelled
                 ? BatchStatus::Cancelled
                 : BatchStatus::Faulted;
    }
    if (Pending.empty() && !InFlight)
      return BatchStatus::Empty;
    CV.wait(L);
  }
}

void Instance::failPending(FaultKind K, const std::string &Msg) {
  Report.FirstFault.Kind = K;
  if (Report.FirstFault.Message.empty())
    Report.FirstFault.Message = Msg;
  Report.Cancelled = Cancel.isCancelledAcquire();
  Faulted.store(true, std::memory_order_release);
  OutQ.poison();
  {
    std::lock_guard<std::mutex> L(M);
    Pending.clear();
    InFlight = false;
  }
  CV.notify_all();
}

void Instance::failUnscheduled(const std::string &Reason) {
  Cancel.cancel();
  failPending(FaultKind::Cancelled, Reason);
}

bool Instance::runBatch(const Batch &B) {
  FunctionExecutor Exec(B.In, Mem, Plan->stepBudget());
  Exec.Cancel = &Cancel;
  if (!InitDone) {
    Counters InitC;
    if (!Exec.runFunction(Plan->initFn(), InitC)) {
      Fault F = Exec.LastFault;
      F.Function = "init";
      Report.FirstFault = F;
      failPending(F.Kind, Exec.Error);
      return false;
    }
    InitDone = true;
  }
  // Slab sequence, mirroring ParallelRunner: full B-iteration slabs
  // first, then the remainder one iteration at a time. For a parallel
  // plan each slab runs every partition in partition order — the
  // topological order the partitioner guarantees — so this is exactly
  // the sequential dataflow execution of the same module.
  const int64_t BI = Plan->batchIters();
  const int64_t FullSlabs = BI > 1 ? B.Iterations / BI : B.Iterations;
  const int64_t RemSlabs = BI > 1 ? B.Iterations % BI : 0;
  const auto &Steady = Plan->steadyFns();
  const auto &SteadyB = Plan->steadyBatchFns();
  Counters C;
  for (int64_t Slab = 0; Slab < FullSlabs + RemSlabs; ++Slab) {
    const bool Full = Slab < FullSlabs;
    const auto &Fns = (Full && BI > 1) ? SteadyB : Steady;
    for (const lir::Function *F : Fns) {
      if (!Exec.runFunction(F, C)) {
        Fault FS = Exec.LastFault;
        FS.Slab = Slab;
        Report.FirstFault = FS;
        failPending(FS.Kind, Exec.Error);
        return false;
      }
    }
    IterationsRun.fetch_add(static_cast<uint64_t>(Full ? BI : 1),
                            std::memory_order_relaxed);
  }
  StepsRetired.fetch_add(Exec.Steps, std::memory_order_relaxed);
  BatchesRun.fetch_add(1, std::memory_order_relaxed);
  // Publish the completed batch. A full queue means the caller is not
  // pulling; spin cooperatively so a cancel (or the deadline watchdog)
  // still unblocks this worker.
  auto *Out = new TokenStream(std::move(Exec.Outputs));
  Out->Ty = Plan->outputType();
  while (!OutQ.tryPush(Out)) {
    if (Cancel.isCancelledAcquire()) {
      delete Out;
      Fault F;
      F.Kind = FaultKind::Cancelled;
      F.Message = "cancelled while publishing a completed batch";
      Report.FirstFault = F;
      failPending(F.Kind, F.Message);
      return false;
    }
    std::this_thread::yield();
  }
  // Touch M between the push and the notify (the spin above must not
  // hold M — the puller pops under it) so a puller that saw the queue
  // empty is already parked in CV.wait and receives this wakeup.
  { std::lock_guard<std::mutex> L(M); }
  CV.notify_all();
  return true;
}

void Instance::runPending() {
  for (;;) {
    Batch B;
    {
      std::lock_guard<std::mutex> L(M);
      if (Faulted.load(std::memory_order_acquire)) {
        Pending.clear();
        InFlight = false;
      } else if (Pending.empty()) {
        InFlight = false;
      } else {
        B = Pending.front();
      }
      if (!InFlight) {
        // Going idle: wake pullers so they can report Empty (or the
        // fault) instead of waiting on a worker that just left.
        CV.notify_all();
        return;
      }
    }
    if (Cancel.isCancelledAcquire()) {
      Fault F;
      F.Kind = FaultKind::Cancelled;
      F.Message = "cancelled";
      Report.FirstFault = F;
      failPending(F.Kind, F.Message);
      return;
    }
    RunningSince.store(profile::Profiler::nowNs(),
                       std::memory_order_release);
    const bool Ok = runBatch(B);
    RunningSince.store(0, std::memory_order_release);
    if (!Ok)
      return;
    std::lock_guard<std::mutex> L(M);
    if (!Pending.empty())
      Pending.pop_front();
  }
}

profile::RunProfile Instance::runtimeStats() const {
  profile::RunProfile P;
  P.Engine = "server-instance";
  P.Workers = 1;
  const uint64_t Iters = IterationsRun.load(std::memory_order_relaxed);
  const uint64_t Batches = BatchesRun.load(std::memory_order_relaxed);
  P.Iterations = static_cast<int64_t>(Iters);
  profile::WorkerCounters W;
  W.Iterations = Iters;
  W.Slabs = Batches;
  // Firings derive from the static schedule, the same scheme both
  // engines use: per-iteration firings times iterations executed.
  uint64_t FiringsPerIter = 0;
  const schedule::Schedule &S = Plan->sched();
  for (const graph::Node *N : S.Order)
    FiringsPerIter += static_cast<uint64_t>(S.repsOf(N));
  W.Firings = FiringsPerIter * Iters;
  P.PerWorker.assign(1, W);
  return P;
}
