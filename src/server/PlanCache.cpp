//===--- PlanCache.cpp - LRU cache of compiled plans ----------------------===//

#include "server/PlanCache.h"
#include <algorithm>

using namespace laminar;
using namespace laminar::server;

std::shared_ptr<const CompiledPlan> PlanCache::lookup(const PlanKey &K) {
  std::lock_guard<std::mutex> L(M);
  auto It = Index.find(K.SourceHash);
  if (It != Index.end()) {
    for (auto LI : It->second) {
      if (LI->Key == K) {
        Lru.splice(Lru.begin(), Lru, LI);
        ++Hits;
        return LI->Plan;
      }
    }
  }
  ++Misses;
  return nullptr;
}

bool PlanCache::insert(const PlanKey &K,
                       std::shared_ptr<const CompiledPlan> P) {
  std::lock_guard<std::mutex> L(M);
  if (Cfg.MaxEntries == 0 ||
      (Cfg.MaxPlanBytes && P->approxBytes() > Cfg.MaxPlanBytes)) {
    ++AdmissionRejects;
    return false;
  }
  // A racing compile of the same key may have inserted first; keep the
  // resident entry so its identity (and byte accounting) stays stable.
  auto It = Index.find(K.SourceHash);
  if (It != Index.end())
    for (auto LI : It->second)
      if (LI->Key == K)
        return true;
  Lru.push_front(Entry{K, std::move(P)});
  Index[K.SourceHash].push_back(Lru.begin());
  Bytes += Lru.front().Plan->approxBytes();
  evictIfNeededLocked();
  return true;
}

void PlanCache::evictIfNeededLocked() {
  while (Lru.size() > Cfg.MaxEntries ||
         (Cfg.MaxBytes && Bytes > Cfg.MaxBytes && Lru.size() > 1)) {
    auto Victim = std::prev(Lru.end());
    Bytes -= Victim->Plan->approxBytes();
    auto &Bucket = Index[Victim->Key.SourceHash];
    Bucket.erase(std::remove(Bucket.begin(), Bucket.end(), Victim),
                 Bucket.end());
    if (Bucket.empty())
      Index.erase(Victim->Key.SourceHash);
    Lru.erase(Victim);
    ++Evictions;
  }
}

size_t PlanCache::entries() const {
  std::lock_guard<std::mutex> L(M);
  return Lru.size();
}

size_t PlanCache::bytes() const {
  std::lock_guard<std::mutex> L(M);
  return Bytes;
}

bool PlanCache::verifyPlansImmutable() const {
  std::lock_guard<std::mutex> L(M);
  for (const Entry &E : Lru)
    if (!E.Plan->verifyImmutable())
      return false;
  return true;
}

void PlanCache::statsInto(StatsRegistry &S) const {
  std::lock_guard<std::mutex> L(M);
  S.add("server.cache.hit", Hits);
  S.add("server.cache.miss", Misses);
  S.add("server.cache.evict", Evictions);
  S.add("server.cache.admission-reject", AdmissionRejects);
  S.add("server.cache.entries", Lru.size());
  S.add("server.cache.bytes", Bytes);
}
