//===--- CApi.cpp - extern "C" embedding surface --------------------------===//
//
// Thin translation layer from include/laminar.h onto StreamServer /
// CompiledPlan / Instance. Handles are heap wrappers around the C++
// smart pointers; no logic lives here beyond argument checking and the
// thread-local last-error string.
//
//===----------------------------------------------------------------------===//

#include "laminar.h"
#include "server/Json.h"
#include "server/Server.h"
#include <cstdlib>
#include <cstring>

using namespace laminar;

namespace {

thread_local std::string LastError;

void setError(std::string Msg) { LastError = std::move(Msg); }

char *dupString(const std::string &S) {
  char *Out = static_cast<char *>(std::malloc(S.size() + 1));
  if (Out)
    std::memcpy(Out, S.c_str(), S.size() + 1);
  return Out;
}

int toCStatus(server::BatchStatus S) {
  switch (S) {
  case server::BatchStatus::Ok:
    return LAMINAR_OK;
  case server::BatchStatus::BadBatch:
    return LAMINAR_BAD_BATCH;
  case server::BatchStatus::Faulted:
    return LAMINAR_FAULTED;
  case server::BatchStatus::Empty:
    return LAMINAR_EMPTY;
  case server::BatchStatus::Cancelled:
    return LAMINAR_CANCELLED;
  case server::BatchStatus::Backlog:
    return LAMINAR_BACKLOG;
  }
  return LAMINAR_ERR;
}

} // namespace

struct laminar_server {
  server::StreamServer S;
  explicit laminar_server(const server::ServerConfig &C) : S(C) {}
};

struct laminar_plan {
  std::shared_ptr<const server::CompiledPlan> P;
};

struct laminar_instance {
  laminar_server *Srv = nullptr;
  std::shared_ptr<server::Instance> I;
};

struct laminar_batch {
  interp::TokenStream S;
};

extern "C" {

void laminar_server_config_init(laminar_server_config *Cfg) {
  if (!Cfg)
    return;
  Cfg->workers = 0;
  Cfg->cache_entries = 64;
  Cfg->cache_bytes = 256ull << 20;
  Cfg->max_plan_bytes = 64ull << 20;
  Cfg->deadline_ms = 0;
}

laminar_server *laminar_server_new(const laminar_server_config *Cfg) {
  server::ServerConfig C;
  if (Cfg) {
    C.Workers = Cfg->workers;
    C.CacheEntries = Cfg->cache_entries;
    C.CacheBytes = Cfg->cache_bytes;
    C.MaxPlanBytes = Cfg->max_plan_bytes;
    C.InstanceDeadlineMs = Cfg->deadline_ms;
  }
  try {
    return new laminar_server(C);
  } catch (const std::exception &E) {
    setError(E.what());
    return nullptr;
  }
}

void laminar_server_free(laminar_server *Srv) { delete Srv; }

char *laminar_server_stats(laminar_server *Srv) {
  if (!Srv) {
    setError("null server");
    return nullptr;
  }
  return dupString(Srv->S.statsJson());
}

void laminar_compile_options_init(laminar_compile_options *Opts) {
  if (!Opts)
    return;
  Opts->top = nullptr;
  Opts->fifo_mode = 0;
  Opts->opt_level = 2;
  Opts->parallel = 0;
  Opts->allow_degrade = 1;
}

laminar_plan *laminar_compile(laminar_server *Srv, const char *Source,
                              const laminar_compile_options *Opts,
                              int *CacheHit) {
  if (CacheHit)
    *CacheHit = 0;
  if (!Srv || !Source) {
    setError(!Srv ? "null server" : "null source");
    return nullptr;
  }
  server::PlanOptions PO;
  if (Opts) {
    if (Opts->top)
      PO.TopName = Opts->top;
    PO.Mode = Opts->fifo_mode ? driver::LoweringMode::Fifo
                              : driver::LoweringMode::Laminar;
    PO.OptLevel = Opts->opt_level;
    PO.Parallel = Opts->parallel;
    PO.AllowDegradeToFifo = Opts->allow_degrade != 0;
  }
  std::string Err;
  bool Hit = false;
  auto P = Srv->S.compile(Source, PO, Err, &Hit);
  if (!P) {
    setError(Err.empty() ? "compilation failed" : Err);
    return nullptr;
  }
  if (CacheHit)
    *CacheHit = Hit ? 1 : 0;
  return new laminar_plan{std::move(P)};
}

void laminar_plan_release(laminar_plan *Plan) { delete Plan; }

char *laminar_plan_info(const laminar_plan *Plan) {
  if (!Plan) {
    setError("null plan");
    return nullptr;
  }
  const server::CompiledPlan &P = *Plan->P;
  auto V = json::Value::object();
  V->set("schema", json::Value::str("laminar-plan-info-v1"));
  V->set("input-type",
         json::Value::str(P.inputType() == lir::TypeKind::Int ? "int"
                                                              : "float"));
  V->set("output-type",
         json::Value::str(P.outputType() == lir::TypeKind::Int ? "int"
                                                               : "float"));
  V->set("input-per-iter",
         json::Value::number(static_cast<double>(P.inputPerIter())));
  V->set("input-for-init",
         json::Value::number(static_cast<double>(P.inputForInit())));
  V->set("output-per-iter",
         json::Value::number(static_cast<double>(P.outputPerIter())));
  V->set("partitions",
         json::Value::number(P.plan() ? P.plan()->NumPartitions : 1));
  V->set("batch-iters",
         json::Value::number(static_cast<double>(P.batchIters())));
  V->set("degraded-to-fifo", json::Value::boolean(P.degradedToFifo()));
  V->set("approx-bytes",
         json::Value::number(static_cast<double>(P.approxBytes())));
  return dupString(V->dump());
}

int laminar_plan_input_type(const laminar_plan *Plan) {
  return Plan && Plan->P->inputType() == lir::TypeKind::Int
             ? LAMINAR_TYPE_INT
             : LAMINAR_TYPE_FLOAT;
}

int laminar_plan_output_type(const laminar_plan *Plan) {
  return Plan && Plan->P->outputType() == lir::TypeKind::Int
             ? LAMINAR_TYPE_INT
             : LAMINAR_TYPE_FLOAT;
}

int64_t laminar_plan_input_per_iter(const laminar_plan *Plan) {
  return Plan ? Plan->P->inputPerIter() : -1;
}

int64_t laminar_plan_input_for_init(const laminar_plan *Plan) {
  return Plan ? Plan->P->inputForInit() : -1;
}

int64_t laminar_plan_output_per_iter(const laminar_plan *Plan) {
  return Plan ? Plan->P->outputPerIter() : -1;
}

laminar_instance *laminar_instance_new(laminar_server *Srv,
                                       laminar_plan *Plan) {
  if (!Srv || !Plan) {
    setError(!Srv ? "null server" : "null plan");
    return nullptr;
  }
  auto I = Srv->S.spawn(Plan->P);
  if (!I) {
    setError("spawn failed");
    return nullptr;
  }
  return new laminar_instance{Srv, std::move(I)};
}

void laminar_instance_free(laminar_instance *Inst) {
  if (!Inst)
    return;
  Inst->Srv->S.freeInstance(Inst->I->id());
  delete Inst;
}

uint64_t laminar_instance_id(const laminar_instance *Inst) {
  return Inst ? Inst->I->id() : 0;
}

void laminar_instance_cancel(laminar_instance *Inst) {
  if (Inst)
    Inst->I->cancel();
}

static int pushBatchImpl(laminar_instance *Inst, interp::TokenView In,
                         int64_t Iterations) {
  if (!Inst) {
    setError("null instance");
    return LAMINAR_ERR;
  }
  std::string Err;
  const server::BatchStatus S =
      Inst->Srv->S.pushBatch(*Inst->I, In, Iterations, &Err);
  if (S != server::BatchStatus::Ok && !Err.empty())
    setError(Err);
  return toCStatus(S);
}

int laminar_push_batch_f64(laminar_instance *Inst, const double *Data,
                           size_t Count, int64_t Iterations) {
  interp::TokenView V;
  V.Ty = lir::TypeKind::Float;
  V.F = Data;
  V.Count = Count;
  if (Count && !Data) {
    setError("null batch buffer");
    return LAMINAR_ERR;
  }
  return pushBatchImpl(Inst, V, Iterations);
}

int laminar_push_batch_i64(laminar_instance *Inst, const int64_t *Data,
                           size_t Count, int64_t Iterations) {
  interp::TokenView V;
  V.Ty = lir::TypeKind::Int;
  V.I = Data;
  V.Count = Count;
  if (Count && !Data) {
    setError("null batch buffer");
    return LAMINAR_ERR;
  }
  return pushBatchImpl(Inst, V, Iterations);
}

int laminar_pull_batch(laminar_instance *Inst, laminar_batch **Out) {
  if (Out)
    *Out = nullptr;
  if (!Inst || !Out) {
    setError(!Inst ? "null instance" : "null out parameter");
    return LAMINAR_ERR;
  }
  auto *B = new laminar_batch();
  const server::BatchStatus S = Inst->I->pullBatch(B->S);
  if (S != server::BatchStatus::Ok) {
    delete B;
    if (S == server::BatchStatus::Faulted)
      setError(Inst->I->faultReport().FirstFault.Message);
    return toCStatus(S);
  }
  *Out = B;
  return LAMINAR_OK;
}

size_t laminar_batch_len(const laminar_batch *Batch) {
  return Batch ? Batch->S.size() : 0;
}

int laminar_batch_type(const laminar_batch *Batch) {
  return Batch && Batch->S.Ty == lir::TypeKind::Int ? LAMINAR_TYPE_INT
                                                    : LAMINAR_TYPE_FLOAT;
}

const double *laminar_batch_data_f64(const laminar_batch *Batch) {
  return Batch && Batch->S.Ty == lir::TypeKind::Float ? Batch->S.F.data()
                                                      : nullptr;
}

const int64_t *laminar_batch_data_i64(const laminar_batch *Batch) {
  return Batch && Batch->S.Ty == lir::TypeKind::Int ? Batch->S.I.data()
                                                    : nullptr;
}

void laminar_batch_free(laminar_batch *Batch) { delete Batch; }

char *laminar_instance_stats(laminar_instance *Inst) {
  if (!Inst) {
    setError("null instance");
    return nullptr;
  }
  return dupString(Inst->I->runtimeStats().json());
}

char *laminar_instance_fault(laminar_instance *Inst) {
  if (!Inst) {
    setError("null instance");
    return nullptr;
  }
  if (!Inst->I->faulted())
    return nullptr;
  return dupString(Inst->I->faultReport().json());
}

const char *laminar_last_error(void) { return LastError.c_str(); }

void laminar_string_free(char *Str) { std::free(Str); }

} // extern "C"
