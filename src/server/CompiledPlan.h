//===--- CompiledPlan.h - Immutable compiled artifact ----------*- C++ -*-===//
//
// The plan half of the server's plan/instance split. A CompiledPlan is
// the *immutable, shareable* product of one compilation: the lowered
// module, the schedule, the optional partition plan and its safety
// certificate, plus everything an instance needs precomputed (rate
// contract, steady-function tables, step budget). Many concurrent
// Instances (Instance.h) execute against one plan; the plan itself is
// never written after build() returns.
//
// Immutability is load-bearing — it is what makes instance spawn
// O(state size) instead of O(compile) and what lets the scheduler run
// instances of the same plan on different workers without any
// plan-side synchronization. Two mechanisms enforce it:
//
//  * the type system: build() returns shared_ptr<const CompiledPlan>,
//    and every accessor is const (the run-time stats that laminarc
//    folds into Compilation::Stats after a run live on the Instance
//    here, never on the plan);
//  * a structural fingerprint: build() hashes the module (globals,
//    initializers, opcode stream, constants) once; verifyImmutable()
//    recomputes and compares. StreamServer asserts it for every cached
//    plan at shutdown, and ServerTest asserts it after concurrent
//    instance storms. The check is deliberately *not* run per spawn —
//    it is O(module), and spawn must stay O(state).
//
//===----------------------------------------------------------------------===//

#ifndef LAMINAR_SERVER_COMPILEDPLAN_H
#define LAMINAR_SERVER_COMPILEDPLAN_H

#include "driver/Driver.h"
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace laminar {
namespace server {

/// The canonicalizable subset of CompileOptions the plan cache keys on.
/// Everything that changes generated code must be here; observability
/// sinks (trace/remarks pointers) deliberately are not.
struct PlanOptions {
  driver::LoweringMode Mode = driver::LoweringMode::Laminar;
  unsigned OptLevel = 2;
  unsigned Parallel = 0;
  parallel::ParallelTuning Tuning;
  CompilerLimits Limits;
  bool AllowDegradeToFifo = true;
  /// Top-level stream declaration to elaborate.
  std::string TopName;

  /// Deterministic key text: every field rendered in a fixed order, so
  /// two option structs canonicalize equal iff they compile equal code.
  std::string canonical() const;
};

/// 64-bit FNV-1a (the cache's source-hash half).
uint64_t fnv1a(const std::string &S);

/// Cache key: (source hash, canonicalized options). The full source is
/// kept alongside so a 64-bit hash collision can never serve the wrong
/// program — lookups compare hash first, then options, then bytes.
struct PlanKey {
  uint64_t SourceHash = 0;
  std::string OptionsKey;
  std::string Source;

  bool operator==(const PlanKey &O) const {
    return SourceHash == O.SourceHash && OptionsKey == O.OptionsKey &&
           Source == O.Source;
  }
};

PlanKey makePlanKey(const std::string &Source, const PlanOptions &Opts);

class CompiledPlan {
public:
  /// Runs the full compiler pipeline and freezes the result. Null (and
  /// \p Err set to the rendered diagnostics) on rejection. The
  /// compile-phase counters stay readable via compileStats() — the
  /// server merges them into its registry on every cold compile, which
  /// is how tests prove a cache hit re-ran zero phases.
  static std::shared_ptr<const CompiledPlan>
  build(const std::string &Source, const PlanOptions &Opts,
        std::string &Err);

  const lir::Module &module() const { return *C.Module; }
  const parallel::PartitionPlan *plan() const {
    return C.Plan ? &*C.Plan : nullptr;
  }
  const schedule::Schedule &sched() const { return *C.Sched; }
  const graph::StreamGraph &graph() const { return *C.Graph; }
  const StatsRegistry &compileStats() const { return C.Stats; }
  bool degradedToFifo() const { return C.DegradedToFifo; }

  lir::TypeKind inputType() const { return C.Module->getInputType(); }
  lir::TypeKind outputType() const { return C.Module->getOutputType(); }

  /// The rate contract every batch must satisfy (tokens, per steady
  /// iteration / for the one-time init phase).
  int64_t inputPerIter() const { return InPerIter; }
  int64_t inputForInit() const { return InForInit; }
  int64_t outputPerIter() const { return OutPerIter; }

  /// Per-executor interpreter step budget the plan was compiled with.
  uint64_t stepBudget() const { return C.InterpStepBudget; }

  /// Steady iterations per slab handoff (1 = unbatched).
  int64_t batchIters() const { return BatchIters; }

  /// The @init function.
  const lir::Function *initFn() const { return Init; }

  /// Single-iteration steady functions, in partition (= topological)
  /// order: [@steady] for a sequential plan, [@steady_p0..p{K-1}] for a
  /// parallel one. A server instance executes the partitions of one
  /// slab in this order on one worker — sequential dataflow order, so
  /// the output is bit-exact with the solo run while cross-*instance*
  /// parallelism comes from the pool (docs/SERVER.md).
  const std::vector<const lir::Function *> &steadyFns() const {
    return Steady;
  }
  /// Batched (@steady_p<k>_b<K>) variants, parallel to steadyFns();
  /// empty when batchIters() == 1.
  const std::vector<const lir::Function *> &steadyBatchFns() const {
    return SteadyBatch;
  }

  /// Approximate resident size (module + graph + source) — the plan
  /// cache's byte accounting and admission control input.
  size_t approxBytes() const { return Bytes; }

  /// Structural fingerprint captured at build time.
  uint64_t fingerprint() const { return Fingerprint; }
  /// Recomputes the fingerprint and compares — false means some
  /// instance (or pass) mutated the shared artifact.
  bool verifyImmutable() const;

private:
  CompiledPlan() = default;

  driver::Compilation C;
  const lir::Function *Init = nullptr;
  std::vector<const lir::Function *> Steady;
  std::vector<const lir::Function *> SteadyBatch;
  int64_t InPerIter = 0;
  int64_t InForInit = 0;
  int64_t OutPerIter = 0;
  int64_t BatchIters = 1;
  size_t Bytes = 0;
  uint64_t Fingerprint = 0;
};

} // namespace server
} // namespace laminar

#endif // LAMINAR_SERVER_COMPILEDPLAN_H
