//===--- CompiledPlan.cpp - Immutable compiled artifact -------------------===//

#include "server/CompiledPlan.h"
#include "parallel/ParallelLowering.h"
#include "support/Casting.h"
#include <algorithm>
#include <cstring>
#include <sstream>

using namespace laminar;
using namespace laminar::server;

uint64_t server::fnv1a(const std::string &S) {
  uint64_t H = 1469598103934665603ULL;
  for (unsigned char C : S) {
    H ^= C;
    H *= 1099511628211ULL;
  }
  return H;
}

std::string PlanOptions::canonical() const {
  std::ostringstream OS;
  OS << "mode=" << (Mode == driver::LoweringMode::Fifo ? "fifo" : "laminar")
     << ";opt=" << OptLevel << ";parallel=" << Parallel
     << ";batch=" << Tuning.Batch << ";slab=" << Tuning.SlabBase
     << ";fission="
     << (Tuning.Fission == parallel::ParallelTuning::FissionMode::Off
             ? "off"
             : Tuning.Fission ==
                       parallel::ParallelTuning::FissionMode::Always
                   ? "always"
                   : "auto")
     << ";force=" << (Tuning.Force ? 1 : 0)
     << ";degrade=" << (AllowDegradeToFifo ? 1 : 0)
     << ";top=" << TopName << ";max-nodes=" << Limits.MaxGraphNodes
     << ";max-reps=" << Limits.MaxRepetition
     << ";max-firings=" << Limits.MaxSteadyFirings
     << ";max-ir-insts=" << Limits.MaxUnrolledInsts
     << ";max-peek=" << Limits.MaxPeekWindow
     << ";max-channel-tokens=" << Limits.MaxChannelTokens
     << ";max-steps=" << Limits.MaxInterpSteps;
  return OS.str();
}

PlanKey server::makePlanKey(const std::string &Source,
                            const PlanOptions &Opts) {
  PlanKey K;
  K.Source = Source;
  K.SourceHash = fnv1a(Source);
  K.OptionsKey = Opts.canonical();
  return K;
}

namespace {

/// Structural module hash: globals (shape + initializer bits), the
/// per-function opcode stream, constant operand values and global
/// operand slots. Cheap (one linear walk, no printing) yet sensitive
/// to any mutation an instance could plausibly make — initializer
/// writes, instruction rewrites, block reordering.
uint64_t hashModule(const lir::Module &M) {
  uint64_t H = 1469598103934665603ULL;
  auto Mix = [&H](uint64_t V) {
    for (int B = 0; B < 8; ++B) {
      H ^= (V >> (B * 8)) & 0xff;
      H *= 1099511628211ULL;
    }
  };
  auto MixStr = [&](const std::string &S) {
    Mix(S.size());
    Mix(fnv1a(S));
  };
  MixStr(M.getName());
  Mix(static_cast<uint64_t>(M.getInputType()));
  Mix(static_cast<uint64_t>(M.getOutputType()));
  for (const auto &G : M.globals()) {
    MixStr(G->getName());
    Mix(static_cast<uint64_t>(G->getElemType()));
    Mix(static_cast<uint64_t>(G->getSize()));
    Mix(static_cast<uint64_t>(G->getMemClass()));
    Mix(G->getSlot());
    for (int64_t V : G->intInit())
      Mix(static_cast<uint64_t>(V));
    for (double V : G->floatInit()) {
      uint64_t Bits;
      static_assert(sizeof(Bits) == sizeof(V));
      std::memcpy(&Bits, &V, sizeof(Bits));
      Mix(Bits);
    }
  }
  for (const auto &F : M.functions()) {
    MixStr(F->getName());
    for (const auto &BB : F->blocks()) {
      Mix(BB->instructions().size());
      for (const auto &I : BB->instructions()) {
        Mix(static_cast<uint64_t>(I->getKind()));
        Mix(static_cast<uint64_t>(I->getType()));
        Mix(I->getNumOperands());
        for (unsigned Op = 0; Op < I->getNumOperands(); ++Op) {
          const lir::Value *V = I->getOperand(Op);
          Mix(static_cast<uint64_t>(V->getKind()));
          if (const auto *CI = dyn_cast<lir::ConstInt>(V))
            Mix(static_cast<uint64_t>(CI->getValue()));
          else if (const auto *CF = dyn_cast<lir::ConstFloat>(V)) {
            uint64_t Bits;
            double D = CF->getValue();
            std::memcpy(&Bits, &D, sizeof(Bits));
            Mix(Bits);
          } else if (const auto *CB = dyn_cast<lir::ConstBool>(V))
            Mix(CB->getValue() ? 1 : 0);
        }
      }
    }
  }
  return H;
}

} // namespace

std::shared_ptr<const CompiledPlan>
CompiledPlan::build(const std::string &Source, const PlanOptions &Opts,
                    std::string &Err) {
  driver::CompileOptions CO;
  CO.TopName = Opts.TopName;
  CO.Mode = Opts.Mode;
  CO.OptLevel = Opts.OptLevel;
  CO.Parallel = Opts.Parallel;
  CO.Tuning = Opts.Tuning;
  CO.Limits = Opts.Limits;
  CO.AllowDegradeToFifo = Opts.AllowDegradeToFifo;

  // shared_ptr<const CompiledPlan> is the only spelling handed out;
  // make_shared needs the private ctor, so build by hand.
  std::shared_ptr<CompiledPlan> P(new CompiledPlan());
  P->C = driver::compile(Source, CO);
  if (!P->C.Ok) {
    Err = P->C.ErrorLog.empty() ? "compilation failed" : P->C.ErrorLog;
    return nullptr;
  }

  const lir::Module &M = *P->C.Module;
  P->Init = M.getFunction("init");
  if (!P->Init) {
    Err = "module has no @init function";
    return nullptr;
  }
  if (const parallel::PartitionPlan *Plan = P->plan()) {
    P->BatchIters = std::max<int64_t>(1, Plan->BatchIters);
    for (unsigned W = 0; W < Plan->NumPartitions; ++W) {
      const lir::Function *F =
          M.getFunction(parallel::steadyFunctionName(W));
      if (!F) {
        Err = "module has no @" + parallel::steadyFunctionName(W);
        return nullptr;
      }
      P->Steady.push_back(F);
      if (P->BatchIters > 1) {
        const lir::Function *FB = M.getFunction(
            parallel::steadyBatchFunctionName(W, P->BatchIters));
        if (!FB) {
          Err = "module has no @" +
                parallel::steadyBatchFunctionName(W, P->BatchIters);
          return nullptr;
        }
        P->SteadyBatch.push_back(FB);
      }
    }
  } else {
    const lir::Function *F = M.getFunction("steady");
    if (!F) {
      Err = "module has no @steady function";
      return nullptr;
    }
    P->Steady.push_back(F);
  }

  P->InPerIter = P->C.Sched->inputPerSteady(*P->C.Graph);
  P->InForInit = P->C.Sched->inputForInit(*P->C.Graph);
  P->OutPerIter = P->C.Sched->outputPerSteady(*P->C.Graph);

  // Byte accounting: instructions dominate; globals and the retained
  // source/AST/graph are a constant-ish tail. 96 bytes/inst is a
  // measured-once approximation, not a promise — the cache only needs
  // relative sizes for LRU byte pressure.
  size_t B = M.instructionCount() * 96 + Source.size();
  for (const auto &G : M.globals())
    B += static_cast<size_t>(G->getSize()) * 8 + 64;
  P->Bytes = B;

  P->Fingerprint = hashModule(M);
  return std::const_pointer_cast<const CompiledPlan>(P);
}

bool CompiledPlan::verifyImmutable() const {
  return hashModule(*C.Module) == Fingerprint;
}
