//===--- Server.cpp - Multi-instance stream server ------------------------===//

#include "server/Server.h"
#include <cassert>
#include <chrono>

using namespace laminar;
using namespace laminar::server;

StreamServer::StreamServer(const ServerConfig &C)
    : Cfg(C), Cache(PlanCacheConfig{C.CacheEntries, C.CacheBytes,
                                    C.MaxPlanBytes}) {
  unsigned W = Cfg.Workers;
  if (W == 0) {
    W = std::thread::hardware_concurrency();
    if (W == 0)
      W = 1;
  }
  Cfg.Workers = W;
  Pool.reserve(W);
  for (unsigned I = 0; I < W; ++I)
    Pool.emplace_back([this] { workerMain(); });
  if (Cfg.InstanceDeadlineMs)
    Watchdog = std::thread([this] { watchdogMain(); });
}

StreamServer::~StreamServer() {
  // Cancel everything first so in-flight batches unwind promptly, then
  // stop the pool. Pool jobs hold shared_ptr<Instance>, so instances
  // stay alive until their last runPending() returns.
  {
    std::lock_guard<std::mutex> L(InstM);
    for (auto &KV : Instances)
      KV.second->cancel();
  }
  {
    std::lock_guard<std::mutex> L(PoolM);
    Stopping = true;
  }
  PoolCV.notify_all();
  {
    std::lock_guard<std::mutex> L(WatchdogM);
    WatchdogStop = true;
  }
  WatchdogCV.notify_all();
  for (std::thread &T : Pool)
    T.join();
  if (Watchdog.joinable())
    Watchdog.join();
#ifndef NDEBUG
  assert(Cache.verifyPlansImmutable() &&
         "a shared CompiledPlan was mutated after build");
#endif
}

std::shared_ptr<const CompiledPlan>
StreamServer::compile(const std::string &Source, PlanOptions Opts,
                      std::string &Err, bool *CacheHit) {
  // The server's resource governor applies to every compile; request
  // options cannot widen it. This also canonicalizes the cache key.
  Opts.Limits = Cfg.Limits;
  const PlanKey Key = makePlanKey(Source, Opts);
  if (auto P = Cache.lookup(Key)) {
    if (CacheHit)
      *CacheHit = true;
    return P;
  }
  if (CacheHit)
    *CacheHit = false;
  // Cold compile, outside every lock: concurrent misses on different
  // keys overlap fully; a concurrent same-key build is resolved by
  // insert() keeping the first resident entry.
  auto P = CompiledPlan::build(Source, Opts, Err);
  {
    std::lock_guard<std::mutex> L(StatsM);
    if (!P) {
      Stats.add("server.compile.error");
      return nullptr;
    }
    Stats.add("server.compile.cold");
    Stats.merge(P->compileStats());
  }
  Cache.insert(Key, P);
  return P;
}

std::shared_ptr<Instance>
StreamServer::spawn(std::shared_ptr<const CompiledPlan> P) {
  if (!P)
    return nullptr;
  std::shared_ptr<Instance> I;
  {
    std::lock_guard<std::mutex> L(InstM);
    I = std::make_shared<Instance>(std::move(P), NextId++);
    Instances.emplace(I->id(), I);
  }
  std::lock_guard<std::mutex> L(StatsM);
  Stats.add("server.instances.spawned");
  return I;
}

std::shared_ptr<Instance> StreamServer::instance(uint64_t Id) const {
  std::lock_guard<std::mutex> L(InstM);
  auto It = Instances.find(Id);
  return It == Instances.end() ? nullptr : It->second;
}

bool StreamServer::freeInstance(uint64_t Id) {
  std::shared_ptr<Instance> I;
  {
    std::lock_guard<std::mutex> L(InstM);
    auto It = Instances.find(Id);
    if (It == Instances.end())
      return false;
    I = std::move(It->second);
    Instances.erase(It);
  }
  I->cancel();
  std::lock_guard<std::mutex> L(StatsM);
  Stats.add("server.instances.freed");
  return true;
}

BatchStatus StreamServer::pushBatch(Instance &I, interp::TokenView In,
                                    int64_t Iterations, std::string *Err) {
  bool NeedsSchedule = false;
  const BatchStatus S = I.pushBatch(In, Iterations, &NeedsSchedule, Err);
  if (S == BatchStatus::Ok) {
    std::lock_guard<std::mutex> L(StatsM);
    Stats.add("server.batches.pushed");
  }
  if (NeedsSchedule) {
    // Re-resolve through the table so the pool job owns a shared_ptr.
    // If freeInstance won the race (or the pool is stopping), no
    // worker will ever run the batch we just queued: fail it so a
    // puller is not left waiting on InFlight forever.
    auto Ref = instance(I.id());
    if (!Ref || !enqueue(std::move(Ref)))
      I.failUnscheduled("instance freed before its batch was scheduled");
  }
  return S;
}

bool StreamServer::enqueue(std::shared_ptr<Instance> I) {
  {
    std::lock_guard<std::mutex> L(PoolM);
    if (Stopping)
      return false;
    JobQ.push_back(std::move(I));
  }
  PoolCV.notify_one();
  return true;
}

void StreamServer::workerMain() {
  for (;;) {
    std::shared_ptr<Instance> Job;
    {
      std::unique_lock<std::mutex> L(PoolM);
      PoolCV.wait(L, [this] { return Stopping || !JobQ.empty(); });
      if (Stopping && JobQ.empty())
        return;
      Job = std::move(JobQ.front());
      JobQ.pop_front();
    }
    Job->runPending();
  }
}

void StreamServer::watchdogMain() {
  const uint64_t DeadlineNs = Cfg.InstanceDeadlineMs * 1000000ull;
  for (;;) {
    {
      std::unique_lock<std::mutex> L(WatchdogM);
      if (WatchdogCV.wait_for(L, std::chrono::milliseconds(5),
                              [this] { return WatchdogStop; }))
        return;
    }
    const uint64_t Now = profile::Profiler::nowNs();
    std::lock_guard<std::mutex> L(InstM);
    for (auto &KV : Instances) {
      const uint64_t Since = KV.second->runningSinceNs();
      if (Since && Now > Since && Now - Since > DeadlineNs)
        KV.second->cancel();
    }
  }
}

size_t StreamServer::liveInstances() const {
  std::lock_guard<std::mutex> L(InstM);
  return Instances.size();
}

StatsRegistry StreamServer::stats() const {
  StatsRegistry S;
  {
    std::lock_guard<std::mutex> L(StatsM);
    S.merge(Stats);
  }
  Cache.statsInto(S);
  S.add("server.instances.live", liveInstances());
  return S;
}

std::string StreamServer::statsJson() const { return stats().json(); }
