//===--- Json.h - Minimal JSON for the laminard wire protocol --*- C++ -*-===//
//
// Just enough JSON for line-delimited request/response frames: parse
// into a small value tree, escape strings on the way out. The rest of
// the codebase *emits* JSON by hand (stats, fault reports, bench
// rows); this is the first component that must *read* it, because
// laminard's socket protocol is JSON both ways. Deliberately strict
// (no comments, no trailing commas) and bounded (depth cap) since it
// parses untrusted socket bytes.
//
//===----------------------------------------------------------------------===//

#ifndef LAMINAR_SERVER_JSON_H
#define LAMINAR_SERVER_JSON_H

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace laminar {
namespace json {

class Value;
using ValuePtr = std::shared_ptr<Value>;

class Value {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }

  static ValuePtr null();
  static ValuePtr boolean(bool B);
  static ValuePtr number(double N);
  static ValuePtr str(std::string S);
  static ValuePtr array();
  static ValuePtr object();

  bool asBool(bool Default = false) const;
  double asNumber(double Default = 0) const;
  int64_t asInt(int64_t Default = 0) const;
  const std::string &asString() const;

  /// Object field access; null Value when absent or not an object.
  ValuePtr get(const std::string &Key) const;
  void set(const std::string &Key, ValuePtr V);

  const std::vector<ValuePtr> &elements() const { return Arr; }
  void push(ValuePtr V) { Arr.push_back(std::move(V)); }

  /// Compact serialization (stable key order — std::map).
  std::string dump() const;

private:
  Kind K = Kind::Null;
  bool B = false;
  double Num = 0;
  std::string Str;
  std::vector<ValuePtr> Arr;
  std::map<std::string, ValuePtr> Obj;
};

/// Strict parse of one JSON document. Returns null and sets \p Err on
/// malformed input (including trailing garbage).
ValuePtr parse(const std::string &Text, std::string &Err);

/// JSON string escaping (shared with the hand-rolled emitters).
std::string escape(const std::string &S);

} // namespace json
} // namespace laminar

#endif // LAMINAR_SERVER_JSON_H
