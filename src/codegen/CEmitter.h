//===--- CEmitter.h - Self-contained C99 emission --------------*- C++ -*-===//
//
// Completes the "StreamIt to C compilation framework": a lowered module
// becomes one self-contained C file with the same semantics as the
// interpreter (wrapping integer arithmetic, identical PRNG input, same
// output order), so emitted programs can be compiled with any C
// compiler and cross-checked against interpreted runs.
//
//===----------------------------------------------------------------------===//

#ifndef LAMINAR_CODEGEN_CEMITTER_H
#define LAMINAR_CODEGEN_CEMITTER_H

#include "lir/Module.h"
#include <cstdint>
#include <string>

namespace laminar {
namespace parallel {
struct PartitionPlan;
}
namespace codegen {

struct CEmitOptions {
  /// Seed of the embedded xorshift input generator (must match the
  /// interpreter run being compared against).
  uint64_t InputSeed = 0x9E3779B97F4A7C15ULL;
  /// Steady iterations when the program is run without arguments.
  int64_t DefaultIterations = 16;
  /// Non-null for a parallel-lowered module (@steady_p0..p{K-1}): emit
  /// a threaded C program — one pthread worker per partition, gated by
  /// cache-line-padded C11 atomic iteration counters per cut edge that
  /// mirror the runtime's SPSC slab handoff protocol. Compile the
  /// output with -pthread.
  const parallel::PartitionPlan *Plan = nullptr;
  /// Fault injection (testing, parallel only): emit an unconditional
  /// lam_fault trap in worker InjectWorker at slab InjectSlab, so the
  /// generated binary exercises the fault protocol — it must exit with
  /// LAM_EXIT_FAULT (42) and a one-line stderr report, never block.
  int InjectWorker = -1;
  int64_t InjectSlab = 0;
  /// Compile runtime telemetry into the generated program (laminarc
  /// --profile-c, parallel only): per-worker cache-line-padded counter
  /// structs and per-cut-edge stall/occupancy tallies updated on the
  /// slab gates, flushed once after the joins as the same
  /// `laminar-runtime-stats-v1` JSON the threaded interpreter emits
  /// (engine "threaded-c"). The binary writes the document to the file
  /// named by its second argument, else to stderr. Firing and slab
  /// counts match the interpreter's for the same plan and iteration
  /// count by construction.
  bool Profile = false;
};

/// Exit code of a generated program that stopped on a runtime fault
/// (division by zero, float-to-int range, injected fault). Documented
/// in docs/PARALLEL.md "Failure semantics".
constexpr int CFaultExitCode = 42;

/// Renders the module as a complete C99 program (globals, init, steady,
/// main with input generation and output printing).
std::string emitC(const lir::Module &M, const CEmitOptions &Opts);

} // namespace codegen
} // namespace laminar

#endif // LAMINAR_CODEGEN_CEMITTER_H
