//===--- Driver.cpp -------------------------------------------------------===//

#include "driver/Driver.h"
#include "frontend/Parser.h"
#include "frontend/Sema.h"
#include "graph/GraphBuilder.h"
#include "lir/Verifier.h"
#include "lower/Lowering.h"
#include "opt/PassManager.h"

using namespace laminar;
using namespace laminar::driver;

const char *driver::compileStageName(CompileStage S) {
  switch (S) {
  case CompileStage::Parse:
    return "parse";
  case CompileStage::Sema:
    return "sema";
  case CompileStage::Graph:
    return "graph";
  case CompileStage::Schedule:
    return "schedule";
  case CompileStage::Lower:
    return "lower";
  case CompileStage::VerifyLowered:
    return "verify-lowered";
  case CompileStage::Optimize:
    return "optimize";
  case CompileStage::VerifyOptimized:
    return "verify-optimized";
  case CompileStage::Done:
    return "done";
  }
  return "unknown";
}

Compilation driver::compile(const std::string &Source,
                            const CompileOptions &Opts) {
  Compilation C;
  DiagnosticEngine Diags;

  C.Stage = CompileStage::Parse;
  C.AST = parseProgram(Source, Diags);
  if (Diags.hasErrors()) {
    C.ErrorLog = Diags.str();
    return C;
  }
  C.Stage = CompileStage::Sema;
  if (!analyzeProgram(*C.AST, Diags)) {
    C.ErrorLog = Diags.str();
    return C;
  }
  C.Stage = CompileStage::Graph;
  C.Graph = graph::buildGraph(*C.AST, Opts.TopName, Diags);
  if (!C.Graph) {
    C.ErrorLog = Diags.str();
    return C;
  }
  C.Stage = CompileStage::Schedule;
  C.Sched = schedule::computeSchedule(*C.Graph, Diags);
  if (!C.Sched) {
    C.ErrorLog = Diags.str();
    return C;
  }
  C.Stage = CompileStage::Lower;
  C.Module = Opts.Mode == LoweringMode::Fifo
                 ? lower::lowerToFifo(*C.Graph, *C.Sched, Diags,
                                      Opts.UnrollFifo, &C.Stats)
                 : lower::lowerToLaminar(*C.Graph, *C.Sched, Diags,
                                         &C.Stats);
  if (!C.Module) {
    C.ErrorLog = Diags.str();
    return C;
  }

  C.Stage = CompileStage::VerifyLowered;
  std::vector<std::string> Violations = lir::verifyModule(*C.Module);
  if (!Violations.empty()) {
    C.ErrorLog = "lowering produced invalid IR:\n";
    for (const std::string &V : Violations)
      C.ErrorLog += "  " + V + "\n";
    return C;
  }

  if (Opts.OptLevel > 0) {
    C.Stage = CompileStage::Optimize;
    if (Opts.VerifyEachPass) {
      opt::PassManager PM(C.Stats);
      PM.setVerifyEachPass(true);
      PM.addPass("constfold", opt::runConstantFold);
      if (Opts.OptLevel >= 2) {
        PM.addPass("globalfold", opt::runGlobalStateFold);
        PM.addPass("memforward", opt::runMemForward);
        PM.addPass("sccp", opt::runSCCP);
        PM.addPass("copyprop", opt::runCopyProp);
        PM.addPass("gvn", opt::runGVN);
      }
      PM.addPass("dce", opt::runDCE);
      PM.addPass("simplifycfg", opt::runSimplifyCFG);
      PM.run(*C.Module, Opts.OptLevel >= 2 ? 4 : 2);
      if (!PM.verifyFailure().empty()) {
        C.ErrorLog = PM.verifyFailure();
        return C;
      }
    } else {
      opt::optimizeModule(*C.Module, Opts.OptLevel, C.Stats);
    }
    C.Stage = CompileStage::VerifyOptimized;
    Violations = lir::verifyModule(*C.Module);
    if (!Violations.empty()) {
      C.ErrorLog = "optimization produced invalid IR:\n";
      for (const std::string &V : Violations)
        C.ErrorLog += "  " + V + "\n";
      return C;
    }
  }

  C.Stage = CompileStage::Done;
  C.Ok = true;
  return C;
}

size_t driver::requiredInputTokens(const Compilation &C,
                                   int64_t Iterations) {
  if (!C.Sched || !C.Graph || !C.Graph->getSource())
    return 0;
  return static_cast<size_t>(C.Sched->inputForInit(*C.Graph) +
                             C.Sched->inputPerSteady(*C.Graph) * Iterations);
}

interp::RunResult driver::runWithRandomInput(const Compilation &C,
                                             int64_t Iterations,
                                             uint64_t Seed) {
  interp::TokenStream Input = interp::makeRandomInput(
      C.Module->getInputType(), requiredInputTokens(C, Iterations), Seed);
  return interp::runModule(*C.Module, Input, Iterations);
}
