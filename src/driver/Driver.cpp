//===--- Driver.cpp -------------------------------------------------------===//

#include "driver/Driver.h"
#include "frontend/Parser.h"
#include "frontend/Sema.h"
#include "graph/GraphBuilder.h"
#include "lir/Verifier.h"
#include "lower/Lowering.h"
#include "opt/PassManager.h"
#include <sstream>

using namespace laminar;
using namespace laminar::driver;

const char *driver::compileStageName(CompileStage S) {
  switch (S) {
  case CompileStage::Parse:
    return "parse";
  case CompileStage::Sema:
    return "sema";
  case CompileStage::Graph:
    return "graph";
  case CompileStage::Schedule:
    return "schedule";
  case CompileStage::Lower:
    return "lower";
  case CompileStage::VerifyLowered:
    return "verify-lowered";
  case CompileStage::Optimize:
    return "optimize";
  case CompileStage::VerifyOptimized:
    return "verify-optimized";
  case CompileStage::Done:
    return "done";
  }
  return "unknown";
}

Compilation driver::compile(const std::string &Source,
                            const CompileOptions &Opts) {
  Compilation C;
  DiagnosticEngine Diags;
  Diags.setErrorLimit(Opts.Limits.MaxErrors);
  // Hand the collected diagnostics to the caller on every exit path.
  auto Fail = [&](Compilation &C) {
    C.ErrorLog = Diags.str();
    C.Diags = Diags.diagnostics();
  };

  C.Stage = CompileStage::Parse;
  C.AST = parseProgram(Source, Diags);
  if (Diags.hasErrors()) {
    Fail(C);
    return C;
  }
  C.Stage = CompileStage::Sema;
  if (!analyzeProgram(*C.AST, Diags)) {
    Fail(C);
    return C;
  }
  C.Stage = CompileStage::Graph;
  C.Graph = graph::buildGraph(*C.AST, Opts.TopName, Diags, Opts.Limits);
  if (!C.Graph) {
    Fail(C);
    return C;
  }
  C.Stage = CompileStage::Schedule;
  C.Sched = schedule::computeSchedule(*C.Graph, Diags, Opts.Limits);
  if (!C.Sched) {
    Fail(C);
    return C;
  }
  C.Stage = CompileStage::Lower;
  bool ExceededBudget = false;
  if (Opts.Mode == LoweringMode::Fifo) {
    C.Module = lower::lowerToFifo(*C.Graph, *C.Sched, Diags,
                                  Opts.UnrollFifo, &C.Stats, Opts.Limits,
                                  &ExceededBudget);
  } else {
    C.Module = lower::lowerToLaminar(*C.Graph, *C.Sched, Diags, &C.Stats,
                                     Opts.Limits, &ExceededBudget);
    if (!C.Module && ExceededBudget && !Diags.hasErrors() &&
        Opts.AllowDegradeToFifo) {
      // Graceful degradation: a correct FIFO program beats no program.
      std::ostringstream OS;
      OS << "laminar lowering exceeds the unrolled-IR budget of "
         << Opts.Limits.MaxUnrolledInsts
         << " instructions (--max-ir-insts); falling back to FIFO "
            "lowering";
      Diags.warning(SourceLoc(1, 1), OS.str());
      C.DegradedToFifo = true;
      ExceededBudget = false;
      // The fallback can itself trip the budget (static work-body
      // loops); keep the out-param so that becomes a hard error below
      // rather than a silent rejection.
      C.Module = lower::lowerToFifo(*C.Graph, *C.Sched, Diags,
                                    /*FullyUnroll=*/false, &C.Stats,
                                    Opts.Limits, &ExceededBudget);
    }
  }
  if (!C.Module && ExceededBudget && !Diags.hasErrors()) {
    std::ostringstream OS;
    OS << "lowering exceeds the unrolled-IR budget of "
       << Opts.Limits.MaxUnrolledInsts << " instructions (--max-ir-insts)";
    Diags.error(SourceLoc(1, 1), OS.str());
  }
  if (!C.Module) {
    Fail(C);
    return C;
  }

  C.Stage = CompileStage::VerifyLowered;
  std::vector<std::string> Violations = lir::verifyModule(*C.Module);
  if (!Violations.empty()) {
    C.ErrorLog = "lowering produced invalid IR:\n";
    for (const std::string &V : Violations)
      C.ErrorLog += "  " + V + "\n";
    C.Diags = Diags.diagnostics();
    return C;
  }

  if (Opts.OptLevel > 0) {
    C.Stage = CompileStage::Optimize;
    if (Opts.VerifyEachPass) {
      opt::PassManager PM(C.Stats);
      PM.setVerifyEachPass(true);
      PM.addPass("constfold", opt::runConstantFold);
      if (Opts.OptLevel >= 2) {
        PM.addPass("globalfold", opt::runGlobalStateFold);
        PM.addPass("memforward", opt::runMemForward);
        PM.addPass("sccp", opt::runSCCP);
        PM.addPass("copyprop", opt::runCopyProp);
        PM.addPass("gvn", opt::runGVN);
      }
      PM.addPass("dce", opt::runDCE);
      PM.addPass("simplifycfg", opt::runSimplifyCFG);
      PM.run(*C.Module, Opts.OptLevel >= 2 ? 4 : 2);
      if (!PM.verifyFailure().empty()) {
        C.ErrorLog = PM.verifyFailure();
        C.Diags = Diags.diagnostics();
        return C;
      }
    } else {
      opt::optimizeModule(*C.Module, Opts.OptLevel, C.Stats);
    }
    C.Stage = CompileStage::VerifyOptimized;
    Violations = lir::verifyModule(*C.Module);
    if (!Violations.empty()) {
      C.ErrorLog = "optimization produced invalid IR:\n";
      for (const std::string &V : Violations)
        C.ErrorLog += "  " + V + "\n";
      C.Diags = Diags.diagnostics();
      return C;
    }
  }

  C.Stage = CompileStage::Done;
  C.Ok = true;
  // Warnings (notably the degradation notice) survive on success.
  C.Diags = Diags.diagnostics();
  return C;
}

size_t driver::requiredInputTokens(const Compilation &C,
                                   int64_t Iterations) {
  if (!C.Sched || !C.Graph || !C.Graph->getSource())
    return 0;
  auto Steady = checkedMul(C.Sched->inputPerSteady(*C.Graph), Iterations);
  auto Total = Steady ? checkedAdd(C.Sched->inputForInit(*C.Graph), *Steady)
                      : std::nullopt;
  // Overflow means the caller asked for an absurd iteration count; an
  // empty input makes the run fail gracefully (underrun) instead of
  // attempting an impossible allocation.
  if (!Total || *Total < 0)
    return 0;
  return static_cast<size_t>(*Total);
}

interp::RunResult driver::runWithRandomInput(const Compilation &C,
                                             int64_t Iterations,
                                             uint64_t Seed) {
  interp::TokenStream Input = interp::makeRandomInput(
      C.Module->getInputType(), requiredInputTokens(C, Iterations), Seed);
  return interp::runModule(*C.Module, Input, Iterations);
}
