//===--- Driver.cpp -------------------------------------------------------===//

#include "driver/Driver.h"
#include "frontend/Parser.h"
#include "frontend/Sema.h"
#include "graph/GraphBuilder.h"
#include "lir/Verifier.h"
#include "lower/Lowering.h"
#include "opt/PassManager.h"

using namespace laminar;
using namespace laminar::driver;

Compilation driver::compile(const std::string &Source,
                            const CompileOptions &Opts) {
  Compilation C;
  DiagnosticEngine Diags;

  C.AST = parseProgram(Source, Diags);
  if (Diags.hasErrors()) {
    C.ErrorLog = Diags.str();
    return C;
  }
  if (!analyzeProgram(*C.AST, Diags)) {
    C.ErrorLog = Diags.str();
    return C;
  }
  C.Graph = graph::buildGraph(*C.AST, Opts.TopName, Diags);
  if (!C.Graph) {
    C.ErrorLog = Diags.str();
    return C;
  }
  C.Sched = schedule::computeSchedule(*C.Graph, Diags);
  if (!C.Sched) {
    C.ErrorLog = Diags.str();
    return C;
  }
  C.Module = Opts.Mode == LoweringMode::Fifo
                 ? lower::lowerToFifo(*C.Graph, *C.Sched, Diags,
                                      Opts.UnrollFifo, &C.Stats)
                 : lower::lowerToLaminar(*C.Graph, *C.Sched, Diags,
                                         &C.Stats);
  if (!C.Module) {
    C.ErrorLog = Diags.str();
    return C;
  }

  std::vector<std::string> Violations = lir::verifyModule(*C.Module);
  if (!Violations.empty()) {
    C.ErrorLog = "lowering produced invalid IR:\n";
    for (const std::string &V : Violations)
      C.ErrorLog += "  " + V + "\n";
    return C;
  }

  if (Opts.OptLevel > 0) {
    if (Opts.VerifyEachPass) {
      opt::PassManager PM(C.Stats);
      PM.setVerifyEachPass(true);
      PM.addPass("constfold", opt::runConstantFold);
      if (Opts.OptLevel >= 2) {
        PM.addPass("globalfold", opt::runGlobalStateFold);
        PM.addPass("memforward", opt::runMemForward);
        PM.addPass("sccp", opt::runSCCP);
        PM.addPass("copyprop", opt::runCopyProp);
        PM.addPass("gvn", opt::runGVN);
      }
      PM.addPass("dce", opt::runDCE);
      PM.addPass("simplifycfg", opt::runSimplifyCFG);
      PM.run(*C.Module, Opts.OptLevel >= 2 ? 4 : 2);
    } else {
      opt::optimizeModule(*C.Module, Opts.OptLevel, C.Stats);
    }
    Violations = lir::verifyModule(*C.Module);
    if (!Violations.empty()) {
      C.ErrorLog = "optimization produced invalid IR:\n";
      for (const std::string &V : Violations)
        C.ErrorLog += "  " + V + "\n";
      return C;
    }
  }

  C.Ok = true;
  return C;
}

size_t driver::requiredInputTokens(const Compilation &C,
                                   int64_t Iterations) {
  if (!C.Sched || !C.Graph || !C.Graph->getSource())
    return 0;
  return static_cast<size_t>(C.Sched->inputForInit(*C.Graph) +
                             C.Sched->inputPerSteady(*C.Graph) * Iterations);
}

interp::RunResult driver::runWithRandomInput(const Compilation &C,
                                             int64_t Iterations,
                                             uint64_t Seed) {
  interp::TokenStream Input = interp::makeRandomInput(
      C.Module->getInputType(), requiredInputTokens(C, Iterations), Seed);
  return interp::runModule(*C.Module, Input, Iterations);
}
