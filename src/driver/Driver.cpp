//===--- Driver.cpp -------------------------------------------------------===//

#include "driver/Driver.h"
#include "frontend/Parser.h"
#include "frontend/Sema.h"
#include "graph/GraphBuilder.h"
#include "lir/Verifier.h"
#include "lower/Lowering.h"
#include "opt/PassManager.h"
#include "parallel/ParallelLowering.h"
#include "parallel/ParallelRunner.h"
#include "parallel/PlanSelection.h"
#include "perfmodel/PlatformModel.h"
#include "verify/IRInvariants.h"
#include "verify/ProtocolCheck.h"
#include <sstream>

using namespace laminar;
using namespace laminar::driver;

const char *driver::compileStageName(CompileStage S) {
  switch (S) {
  case CompileStage::Parse:
    return "parse";
  case CompileStage::Sema:
    return "sema";
  case CompileStage::Graph:
    return "graph";
  case CompileStage::Schedule:
    return "schedule";
  case CompileStage::CertifyPlan:
    return "certify-plan";
  case CompileStage::Lower:
    return "lower";
  case CompileStage::VerifyLowered:
    return "verify-lowered";
  case CompileStage::Analyze:
    return "analyze";
  case CompileStage::Optimize:
    return "optimize";
  case CompileStage::VerifyOptimized:
    return "verify-optimized";
  case CompileStage::Done:
    return "done";
  }
  return "unknown";
}

Compilation driver::compile(const std::string &Source,
                            const CompileOptions &Opts) {
  Compilation C;
  // The run-time step budget rides along with the compilation so
  // runWithRandomInput enforces the configured limit by default.
  if (Opts.Limits.MaxInterpSteps > 0)
    C.InterpStepBudget = static_cast<uint64_t>(Opts.Limits.MaxInterpSteps);
  TraceScope Root(Opts.Trace, "compile");
  DiagnosticEngine Diags;
  Diags.setErrorLimit(Opts.Limits.MaxErrors);
  // Hand the collected diagnostics to the caller on every exit path.
  auto Fail = [&](Compilation &C) {
    C.ErrorLog = Diags.str();
    C.Diags = Diags.diagnostics();
  };

  C.Stage = CompileStage::Parse;
  {
    TraceScope Span(Opts.Trace, "parse");
    C.AST = parseProgram(Source, Diags);
  }
  if (Diags.hasErrors()) {
    Fail(C);
    return C;
  }
  C.Stage = CompileStage::Sema;
  bool SemaOk;
  {
    TraceScope Span(Opts.Trace, "sema");
    SemaOk = analyzeProgram(*C.AST, Diags);
  }
  if (!SemaOk) {
    Fail(C);
    return C;
  }
  C.Stage = CompileStage::Graph;
  {
    TraceScope Span(Opts.Trace, "graph");
    C.Graph = graph::buildGraph(*C.AST, Opts.TopName, Diags, Opts.Limits);
  }
  if (!C.Graph) {
    Fail(C);
    return C;
  }
  C.Graph->recordStats(C.Stats);
  C.Stage = CompileStage::Schedule;
  {
    TraceScope Span(Opts.Trace, "schedule");
    C.Sched = schedule::computeSchedule(*C.Graph, Diags, Opts.Limits,
                                        &C.Stats);
  }
  if (!C.Sched) {
    Fail(C);
    return C;
  }
  if (Opts.Remarks) {
    // Name the channel moving the most tokens per steady iteration —
    // the one whose traffic dominates whatever the lowering does next.
    const graph::Channel *Busiest = nullptr;
    int64_t BusiestTokens = -1, TotalTokens = 0;
    for (const auto &Ch : C.Graph->channels()) {
      int64_t T = Ch->srcRate() * C.Sched->repsOf(Ch->getSrc());
      TotalTokens += T;
      if (T > BusiestTokens) {
        BusiestTokens = T;
        Busiest = Ch.get();
      }
    }
    if (Busiest) {
      std::ostringstream OS;
      OS << "channel " << Busiest->getId() << " ("
         << Busiest->getSrc()->getName() << " -> "
         << Busiest->getDst()->getName() << ") dominates the steady state: "
         << BusiestTokens << " of " << TotalTokens
         << " token(s) moved per iteration";
      Opts.Remarks->analysis("schedule", "DominantChannel", OS.str(),
                             lower::channelRange(Busiest));
    }
  }
  // Accumulates analysis errors across the graph- and module-level check
  // passes; --Werror-analysis promotes warnings before emission so the
  // resulting diagnostics (and exit status) are real errors.
  unsigned AnalysisErrors = 0;
  auto RunChecks = [&](analysis::AnalysisReport R) {
    if (Opts.AnalysisWerror)
      for (analysis::Finding &F : R.Findings)
        F.Error = true;
    AnalysisErrors +=
        analysis::emitFindings(R, Diags, Opts.Remarks, &C.Stats);
    for (analysis::Finding &F : R.Findings)
      C.Analysis.Findings.push_back(std::move(F));
  };
  // AST-level checks run before lowering on purpose: a proved peek past
  // the declared window is reported even when lowering later fails or
  // degrades to FIFO. Their *emission* is deferred until after lowering,
  // though: lowering bails out on pre-existing error diagnostics, and an
  // analysis rejection must keep the lowered module around for the fuzz
  // oracle's concrete cross-examination — and classify as an analysis
  // rejection (stage 'analyze'), not a backend fault at 'lower'.
  analysis::AnalysisReport GraphReport;
  if (Opts.Analyze) {
    TraceScope Span(Opts.Trace, "analyze-graph");
    GraphReport = analysis::checkStreamSafety(*C.Graph);
  }

  C.Stage = CompileStage::Lower;
  bool ExceededBudget = false;
  if (Opts.Parallel > 0) {
    bool LaminarIntra = Opts.Mode == LoweringMode::Laminar;
    // Calibrate the cost gate: lower and optimize the *sequential*
    // module once, then price its straight-line @steady statically.
    // That anchors the gate's baseline to the instruction mix O2
    // actually leaves (constant folding can shrink work bodies by an
    // order of magnitude, which the partitioner's AST walk cannot see).
    // Best-effort: any failure just leaves the gate uncalibrated.
    double CalibSeq = 0;
    if (LaminarIntra && Opts.Parallel > 1) {
      TraceScope Span(Opts.Trace, "calibrate");
      DiagnosticEngine ScratchDiags;
      bool ScratchExceeded = false;
      std::unique_ptr<lir::Module> SeqMod = lower::lowerToLaminar(
          *C.Graph, *C.Sched, ScratchDiags, nullptr, Opts.Limits,
          &ScratchExceeded);
      if (SeqMod && !ScratchDiags.hasErrors()) {
        StatsRegistry ScratchStats;
        if (Opts.OptLevel > 0)
          opt::optimizeModule(*SeqMod, Opts.OptLevel, ScratchStats, nullptr,
                              nullptr);
        if (const lir::Function *Steady = SeqMod->getFunction("steady"))
          if (const perfmodel::PlatformModel *PM =
                  Opts.Platform ? &*Opts.Platform
                                : perfmodel::findPlatform("i7-2600K"))
            CalibSeq = parallel::staticFunctionCycles(*Steady, *PM);
      }
    }
    {
      TraceScope Span(Opts.Trace, "partition");
      std::optional<parallel::SelectedPlan> SP = parallel::selectPlan(
          *C.Graph, *C.Sched, Opts.Parallel, Diags, Opts.Limits, &C.Stats,
          Opts.Remarks, Opts.Tuning, LaminarIntra, CalibSeq,
          Opts.Platform ? &*Opts.Platform : nullptr);
      if (SP) {
        // Fission rewrote the graph: the chosen plan places the
        // replicated graph's actors, so the lowering (and every later
        // consumer) must see that graph and its schedule.
        if (SP->FissionedGraph) {
          C.Graph = std::move(SP->FissionedGraph);
          C.Sched = std::move(SP->FissionedSched);
        }
        C.Plan = std::move(SP->Plan);
      }
    }
    if (!C.Plan) {
      if (Opts.Analyze) {
        RunChecks(std::move(GraphReport));
        if (AnalysisErrors > 0)
          C.Stage = CompileStage::Analyze;
      }
      Fail(C);
      return C;
    }
    if (Opts.VerifyPlan) {
      // Static plan-safety certification: prove the selected plan
      // deadlock-free (marked-graph liveness over slab tickets and
      // credit windows) and its rings capacity-sufficient before any
      // code is generated for it. Hostile --parallel-slab /
      // --parallel-batch combinations die here with a located
      // diagnostic naming the unmarked cycle, instead of hanging at
      // run time until the --deadline-ms watchdog fires.
      C.Stage = CompileStage::CertifyPlan;
      TraceScope Span(Opts.Trace, "certify-plan");
      C.PlanCert = verify::certifyPlan(*C.Graph, *C.Sched, *C.Plan,
                                       Diags, Opts.Limits, &C.Stats,
                                       Opts.Remarks);
      if (!C.PlanCert->ok()) {
        if (Opts.Analyze) {
          RunChecks(std::move(GraphReport));
          if (AnalysisErrors > 0)
            C.Stage = CompileStage::Analyze;
        }
        Fail(C);
        return C;
      }
      C.Stage = CompileStage::Lower;
    }
    TraceScope LowerSpan(Opts.Trace, "lower");
    C.Module = parallel::lowerToParallel(*C.Graph, *C.Sched, *C.Plan,
                                         LaminarIntra, Diags, &C.Stats,
                                         Opts.Limits, &ExceededBudget,
                                         Opts.Remarks, Opts.Trace);
    if (!C.Module && LaminarIntra && ExceededBudget && !Diags.hasErrors() &&
        Opts.AllowDegradeToFifo) {
      // Same graceful degradation as the sequential pipeline: keep the
      // partition plan, switch every intra channel to a ring buffer.
      std::ostringstream OS;
      OS << "laminar lowering exceeds the unrolled-IR budget of "
         << Opts.Limits.MaxUnrolledInsts
         << " instructions (--max-ir-insts); falling back to FIFO "
            "lowering";
      Diags.warning(SourceLoc(1, 1), OS.str());
      if (Opts.Remarks)
        Opts.Remarks->missed("laminar-lowering", "DegradeToFifo", OS.str(),
                             SourceRange(SourceLoc(1, 1)));
      C.Stats.add("driver.degraded-to-fifo");
      C.DegradedToFifo = true;
      ExceededBudget = false;
      C.Module = parallel::lowerToParallel(*C.Graph, *C.Sched, *C.Plan,
                                           /*LaminarIntra=*/false, Diags,
                                           &C.Stats, Opts.Limits,
                                           &ExceededBudget, Opts.Remarks,
                                           Opts.Trace);
    }
  } else {
  TraceScope LowerSpan(Opts.Trace, "lower");
  if (Opts.Mode == LoweringMode::Fifo) {
    C.Module = lower::lowerToFifo(*C.Graph, *C.Sched, Diags,
                                  Opts.UnrollFifo, &C.Stats, Opts.Limits,
                                  &ExceededBudget, Opts.Remarks,
                                  Opts.Trace);
  } else {
    C.Module = lower::lowerToLaminar(*C.Graph, *C.Sched, Diags, &C.Stats,
                                     Opts.Limits, &ExceededBudget,
                                     Opts.Remarks, Opts.Trace);
    if (!C.Module && ExceededBudget && !Diags.hasErrors() &&
        Opts.AllowDegradeToFifo) {
      // Graceful degradation: a correct FIFO program beats no program.
      std::ostringstream OS;
      OS << "laminar lowering exceeds the unrolled-IR budget of "
         << Opts.Limits.MaxUnrolledInsts
         << " instructions (--max-ir-insts); falling back to FIFO "
            "lowering";
      Diags.warning(SourceLoc(1, 1), OS.str());
      if (Opts.Remarks)
        Opts.Remarks->missed("laminar-lowering", "DegradeToFifo", OS.str(),
                             SourceRange(SourceLoc(1, 1)));
      C.Stats.add("driver.degraded-to-fifo");
      C.DegradedToFifo = true;
      ExceededBudget = false;
      // The fallback can itself trip the budget (static work-body
      // loops); keep the out-param so that becomes a hard error below
      // rather than a silent rejection.
      C.Module = lower::lowerToFifo(*C.Graph, *C.Sched, Diags,
                                    /*FullyUnroll=*/false, &C.Stats,
                                    Opts.Limits, &ExceededBudget,
                                    Opts.Remarks, Opts.Trace);
    }
  }
  }
  if (!C.Module && ExceededBudget && !Diags.hasErrors()) {
    std::ostringstream OS;
    OS << "lowering exceeds the unrolled-IR budget of "
       << Opts.Limits.MaxUnrolledInsts << " instructions (--max-ir-insts)";
    Diags.error(SourceLoc(1, 1), OS.str());
  }
  if (!C.Module) {
    if (Opts.Analyze) {
      RunChecks(std::move(GraphReport));
      // A program condemned by the graph-level checks is an analysis
      // rejection even when lowering also failed on it.
      if (AnalysisErrors > 0)
        C.Stage = CompileStage::Analyze;
    }
    Fail(C);
    return C;
  }

  C.Stage = CompileStage::VerifyLowered;
  std::vector<std::string> Violations;
  {
    TraceScope Span(Opts.Trace, "verify-lowered");
    // Constant-index bounds hold for freshly lowered IR only; see
    // verifyModule's contract for why optimized IR is exempt.
    Violations = lir::verifyModule(*C.Module,
                                   /*BoundsCheckConstIndices=*/true);
  }
  // Structural invariants beyond the SSA verifier: declared-vs-actual
  // rate consistency, token-liveness against StateAnalysis, and (for
  // parallel modules) the partition-isolation premise of the
  // happens-before argument. Shared with the per-pass verification
  // below so the first pass that breaks one is named.
  verify::InvariantContext InvCtx;
  InvCtx.G = C.Graph.get();
  InvCtx.S = C.Sched ? &*C.Sched : nullptr;
  InvCtx.Plan = C.Plan ? &*C.Plan : nullptr;
  auto CheckInvariants =
      [InvCtx](const lir::Module &M) -> std::vector<std::string> {
    std::vector<std::string> V = verify::checkIRInvariants(M, InvCtx);
    if (InvCtx.Plan && V.empty())
      V = verify::checkPartitionIsolation(M, *InvCtx.Plan);
    return V;
  };
  if (Violations.empty()) {
    TraceScope Span(Opts.Trace, "verify-invariants");
    Violations = CheckInvariants(*C.Module);
  }
  if (!Violations.empty()) {
    if (Opts.Analyze)
      RunChecks(std::move(GraphReport));
    C.ErrorLog = "lowering produced invalid IR:\n";
    for (const std::string &V : Violations)
      C.ErrorLog += "  " + V + "\n";
    C.Diags = Diags.diagnostics();
    return C;
  }

  if (Opts.Analyze) {
    C.Stage = CompileStage::Analyze;
    RunChecks(std::move(GraphReport));
    {
      TraceScope Span(Opts.Trace, "analyze");
      RunChecks(analysis::checkModule(*C.Module, Opts.AnalysisOpts));
    }
    if (AnalysisErrors > 0) {
      // Module stays set: an analysis rejection is a claim about the
      // program, and the fuzz oracle interprets the module to confirm
      // it on a concrete trace.
      Fail(C);
      return C;
    }
  }

  if (Opts.OptLevel > 0) {
    C.Stage = CompileStage::Optimize;
    {
    TraceScope OptSpan(Opts.Trace, "optimize");
    if (Opts.VerifyEachPass) {
      opt::PassManager PM(C.Stats);
      PM.setVerifyEachPass(true);
      PM.setExtraVerifier(CheckInvariants);
      PM.setTrace(Opts.Trace);
      PM.setRemarks(Opts.Remarks);
      PM.addPass("constfold", opt::runConstantFold);
      if (Opts.OptLevel >= 2) {
        PM.addPass("globalfold", opt::runGlobalStateFold);
        PM.addPass("memforward", opt::runMemForward);
        PM.addPass("sccp", opt::runSCCP);
        PM.addPass("copyprop", opt::runCopyProp);
        PM.addPass("gvn", opt::runGVN);
      }
      PM.addPass("dce", opt::runDCE);
      PM.addPass("simplifycfg", opt::runSimplifyCFG);
      PM.run(*C.Module, Opts.OptLevel >= 2 ? 4 : 2);
      if (!PM.verifyFailure().empty()) {
        C.ErrorLog = PM.verifyFailure();
        C.Diags = Diags.diagnostics();
        return C;
      }
    } else {
      opt::optimizeModule(*C.Module, Opts.OptLevel, C.Stats, Opts.Trace,
                          Opts.Remarks);
    }
    }
    C.Stage = CompileStage::VerifyOptimized;
    {
      TraceScope Span(Opts.Trace, "verify-optimized");
      Violations = lir::verifyModule(*C.Module);
      if (Violations.empty())
        Violations = CheckInvariants(*C.Module);
    }
    if (!Violations.empty()) {
      C.ErrorLog = "optimization produced invalid IR:\n";
      for (const std::string &V : Violations)
        C.ErrorLog += "  " + V + "\n";
      C.Diags = Diags.diagnostics();
      return C;
    }
  }

  C.Stage = CompileStage::Done;
  C.Ok = true;
  // Warnings (notably the degradation notice) survive on success.
  C.Diags = Diags.diagnostics();
  return C;
}

size_t driver::requiredInputTokens(const Compilation &C,
                                   int64_t Iterations) {
  if (!C.Sched || !C.Graph || !C.Graph->getSource())
    return 0;
  auto Steady = checkedMul(C.Sched->inputPerSteady(*C.Graph), Iterations);
  auto Total = Steady ? checkedAdd(C.Sched->inputForInit(*C.Graph), *Steady)
                      : std::nullopt;
  // Overflow means the caller asked for an absurd iteration count; an
  // empty input makes the run fail gracefully (underrun) instead of
  // attempting an impossible allocation.
  if (!Total || *Total < 0)
    return 0;
  return static_cast<size_t>(*Total);
}

interp::RunResult driver::runWithRandomInput(
    const Compilation &C, int64_t Iterations, uint64_t Seed,
    TraceContext *Trace, std::vector<interp::Counters> *PerWorkerSteady,
    const RunParams &Params) {
  interp::TokenStream Input = interp::makeRandomInput(
      C.Module->getInputType(), requiredInputTokens(C, Iterations), Seed);
  const uint64_t Budget =
      Params.StepBudget ? Params.StepBudget : C.InterpStepBudget;
  if (C.Plan) {
    parallel::RunOptions RO;
    RO.StepBudget = Budget;
    RO.DeadlineMs = Params.DeadlineMs;
    RO.Inject = Params.Inject;
    RO.Trace = Trace;
    RO.PerWorkerSteady = PerWorkerSteady;
    RO.Profiler = Params.Profiler;
    RO.ProfileOut = Params.ProfileOut;
    return parallel::runParallel(*C.Module, *C.Plan, Input, Iterations, RO);
  }
  const uint64_t StartNs =
      Params.ProfileOut ? profile::Profiler::nowNs() : 0;
  interp::RunResult R =
      interp::runModule(*C.Module, Input, Iterations, Budget,
                        Params.Inject.enabled() ? &Params.Inject
                                                : nullptr);
  if (Params.ProfileOut) {
    // Sequential telemetry in the same schema: one worker, one firing
    // per scheduled actor firing, no slabs and no edges. Firings come
    // from the static schedule (the steady function is unrolled, so
    // the interpreter has no firing boundary to count at run time).
    profile::RunProfile &P = *Params.ProfileOut;
    P.Engine = "interp";
    P.Workers = 1;
    P.Iterations = R.SteadyIterations;
    P.WallNs = profile::Profiler::nowNs() - StartNs;
    profile::WorkerCounters W;
    if (C.Sched) {
      uint64_t FiringsPerIter = 0;
      for (const graph::Node *N : C.Sched->Order)
        FiringsPerIter += static_cast<uint64_t>(C.Sched->repsOf(N));
      W.Firings =
          FiringsPerIter * static_cast<uint64_t>(R.SteadyIterations);
    }
    W.Iterations = static_cast<uint64_t>(R.SteadyIterations);
    P.PerWorker.assign(1, W);
    P.Edges.clear();
  }
  return R;
}
