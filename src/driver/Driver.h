//===--- Driver.h - End-to-end compilation pipeline ------------*- C++ -*-===//
//
// parse -> sema -> elaborate -> schedule -> lower (FIFO | Laminar)
//   -> optimize -> (interpret | emit C)
//
//===----------------------------------------------------------------------===//

#ifndef LAMINAR_DRIVER_DRIVER_H
#define LAMINAR_DRIVER_DRIVER_H

#include "analysis/Checks.h"
#include "frontend/AST.h"
#include "graph/StreamGraph.h"
#include "interp/Interpreter.h"
#include "lir/Module.h"
#include "parallel/Partitioner.h"
#include "perfmodel/PlatformModel.h"
#include "profile/Profile.h"
#include "schedule/Schedule.h"
#include "support/Limits.h"
#include "support/Remarks.h"
#include "support/Statistics.h"
#include "support/Trace.h"
#include "verify/PlanCertifier.h"
#include <memory>
#include <optional>
#include <string>

namespace laminar {
namespace driver {

enum class LoweringMode { Fifo, Laminar };

/// Pipeline stages, in execution order. A failed Compilation records the
/// stage that rejected it, so callers (notably the differential fuzzer)
/// can distinguish "the program is invalid" (frontend stages) from "the
/// compiler broke" (lowering/optimization stages).
enum class CompileStage {
  Parse,
  Sema,
  Graph,
  Schedule,
  // Plan certification precedes Lower in the enum on purpose: an
  // uncertifiable plan is the input's (or the flags') fault, so
  // failedInBackend() must stay false for it.
  CertifyPlan,
  Lower,
  VerifyLowered,
  Analyze,
  Optimize,
  VerifyOptimized,
  Done,
};

/// Human-readable stage name ("parse", "sema", ...).
const char *compileStageName(CompileStage S);

struct CompileOptions {
  /// Name of the top-level stream declaration.
  std::string TopName;
  LoweringMode Mode = LoweringMode::Laminar;
  /// 0 = no optimization, 1 = folding + cleanup, 2 = full pipeline.
  unsigned OptLevel = 2;
  /// FIFO mode only: unroll the steady state and static work loops
  /// while keeping run-time buffers (the A2 ablation configuration).
  bool UnrollFifo = false;
  /// Re-verify the module after each optimization pass (tests).
  bool VerifyEachPass = false;
  /// Resource governor: every stage that can amplify input size checks
  /// against these ceilings instead of crashing or exhausting memory.
  CompilerLimits Limits;
  /// Laminar mode: when the full unroll exceeds Limits.MaxUnrolledInsts,
  /// fall back to FIFO lowering with a warning instead of erroring.
  bool AllowDegradeToFifo = true;
  /// Observability sinks; null (the default) disables each at near-zero
  /// cost. Trace receives one nested span per pipeline stage (and
  /// per-pass/per-function spans below that); Remarks receives the
  /// pipeline's optimization-remark stream.
  TraceContext *Trace = nullptr;
  RemarkEmitter *Remarks = nullptr;
  /// Partition the steady state across this many workers (laminarc
  /// --parallel=N). 0 = sequential compilation (one @steady function).
  /// With N > 0 the module carries @steady_p0..p{K-1} and Compilation
  /// records the PartitionPlan; the mode still selects the channel
  /// treatment (Laminar = intra-partition channels stay compile-time
  /// queues, Fifo = every channel is a ring buffer).
  unsigned Parallel = 0;
  /// Planner knobs for the parallel path (--parallel-force,
  /// --parallel-batch=K, --parallel-slab=S, --no-parallel-fission).
  parallel::ParallelTuning Tuning;
  /// Platform cost model override for partitioning and the cost gate
  /// (laminarc --platform-profile=FILE, written by laminar-calibrate).
  /// Unset = the built-in reference platform (i7-2600K).
  std::optional<perfmodel::PlatformModel> Platform;
  /// Run the compile-time stream-safety checks (laminarc --analyze):
  /// AST-level peek/pop checks after scheduling (they run even when
  /// lowering later fails or degrades to FIFO), LIR-level range and
  /// state checks after the lowered module verifies. Proved violations
  /// are errors and fail the compilation at CompileStage::Analyze.
  bool Analyze = false;
  /// Treat analysis warnings as errors (laminarc --Werror-analysis).
  bool AnalysisWerror = false;
  analysis::AnalysisOptions AnalysisOpts;
  /// Certify every selected parallel plan (deadlock-freedom over the
  /// slab marked graph, ring-capacity sufficiency, placement premises)
  /// before lowering; an uncertifiable plan fails the compilation at
  /// CompileStage::CertifyPlan with located diagnostics. Disabled by
  /// laminarc --no-verify-plan (testing the certifier itself).
  bool VerifyPlan = true;
};

/// The result of one compilation; owns every intermediate artifact (the
/// schedule references the graph, which references the AST).
struct Compilation {
  bool Ok = false;
  std::string ErrorLog;
  /// On success, CompileStage::Done; on failure, the stage that failed.
  CompileStage Stage = CompileStage::Parse;
  /// True when Laminar lowering exceeded the unrolled-IR budget and the
  /// driver degraded to FIFO lowering (Module is a FIFO module; a
  /// warning diagnostic records the decision).
  bool DegradedToFifo = false;
  /// Every diagnostic the pipeline emitted, including warnings on
  /// successful compilations (ErrorLog only carries the rendered form
  /// of failures).
  std::vector<Diagnostic> Diags;

  /// True when at least one error diagnostic carries a valid source
  /// location — the crash-mode fuzzer's rejection invariant.
  bool hasLocatedError() const {
    for (const Diagnostic &D : Diags)
      if (D.Kind == DiagKind::Error && D.Loc.isValid())
        return true;
    return false;
  }

  /// True when the failure implicates the compiler itself rather than
  /// the input program: the frontend accepted and scheduled the program,
  /// but lowering, verification or optimization rejected it. Analysis
  /// rejections implicate the program (a proved unsafe access), not the
  /// compiler.
  bool failedInBackend() const {
    return !Ok && Stage >= CompileStage::Lower &&
           Stage != CompileStage::Analyze;
  }

  std::unique_ptr<ast::Program> AST;
  std::unique_ptr<graph::StreamGraph> Graph;
  std::optional<schedule::Schedule> Sched;
  std::unique_ptr<lir::Module> Module;
  /// Set iff the compilation was parallel (CompileOptions::Parallel > 0
  /// and partitioning succeeded): actor placement plus cut-edge ring
  /// sizing, consumed by the threaded runtime and the C backend.
  std::optional<parallel::PartitionPlan> Plan;
  /// The plan-safety certificate (set iff a plan was selected and
  /// CompileOptions::VerifyPlan ran): machine-checked deadlock-freedom
  /// and capacity verdicts with the findings that justified them.
  std::optional<verify::PlanCertificate> PlanCert;
  /// Findings of the stream-safety checks (only populated with
  /// CompileOptions::Analyze). On an analysis rejection, Module stays
  /// set so callers (the fuzz oracle) can confirm proved claims on a
  /// concrete interpreter run.
  analysis::AnalysisReport Analysis;
  /// Optimization statistics (transformation counts per pass).
  StatsRegistry Stats;
  /// Interpreter step budget the compilation was configured with
  /// (CompilerLimits::MaxInterpSteps); runWithRandomInput's default.
  uint64_t InterpStepBudget = 2'000'000'000ULL;
};

/// Runs the full pipeline on \p Source. Check Ok before using results;
/// ErrorLog carries rendered diagnostics on failure.
Compilation compile(const std::string &Source, const CompileOptions &Opts);

/// Number of input tokens the compiled program consumes for @init plus
/// \p Iterations steady iterations.
size_t requiredInputTokens(const Compilation &C, int64_t Iterations);

/// Execution knobs for runWithRandomInput beyond the positional
/// arguments (fault containment and resource bounds).
struct RunParams {
  /// Interpreter step budget; 0 uses the budget the compilation was
  /// configured with (CompilerLimits::MaxInterpSteps, laminarc
  /// --max-steps).
  uint64_t StepBudget = 0;
  /// Watchdog deadline in ms for parallel runs (laminarc
  /// --deadline-ms); 0 disables.
  int64_t DeadlineMs = 0;
  /// Deterministic fault injection (laminarc --inject-fault). Step
  /// sites work sequentially and in parallel; pop/push sites require a
  /// parallel compilation.
  interp::FaultPoint Inject;
  /// Runtime telemetry (laminarc --profile-json / --profile-trace).
  /// Null = disabled at one-pointer-test cost. Parallel runs fill the
  /// profiler's per-worker slots and write the completed summary to
  /// ProfileOut; sequential runs synthesize an engine "interp" summary
  /// directly into ProfileOut (Profiler may stay null).
  profile::Profiler *Profiler = nullptr;
  profile::RunProfile *ProfileOut = nullptr;
};

/// Interprets the compiled module for \p Iterations steady iterations
/// over deterministic randomized input derived from \p Seed. Parallel
/// compilations run on Plan->NumPartitions worker threads; \p Trace
/// (optional) receives per-worker spans and \p PerWorkerSteady the
/// per-worker steady counters.
interp::RunResult runWithRandomInput(const Compilation &C,
                                     int64_t Iterations, uint64_t Seed,
                                     TraceContext *Trace = nullptr,
                                     std::vector<interp::Counters>
                                         *PerWorkerSteady = nullptr,
                                     const RunParams &Params = RunParams());

} // namespace driver
} // namespace laminar

#endif // LAMINAR_DRIVER_DRIVER_H
