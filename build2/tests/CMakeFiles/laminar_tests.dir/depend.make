# Empty dependencies file for laminar_tests.
# This may be replaced when dependencies are built.
