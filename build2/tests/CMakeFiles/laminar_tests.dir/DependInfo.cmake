
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/AnalysisTest.cpp" "tests/CMakeFiles/laminar_tests.dir/AnalysisTest.cpp.o" "gcc" "tests/CMakeFiles/laminar_tests.dir/AnalysisTest.cpp.o.d"
  "/root/repo/tests/CodegenTest.cpp" "tests/CMakeFiles/laminar_tests.dir/CodegenTest.cpp.o" "gcc" "tests/CMakeFiles/laminar_tests.dir/CodegenTest.cpp.o.d"
  "/root/repo/tests/ConstEvalTest.cpp" "tests/CMakeFiles/laminar_tests.dir/ConstEvalTest.cpp.o" "gcc" "tests/CMakeFiles/laminar_tests.dir/ConstEvalTest.cpp.o.d"
  "/root/repo/tests/CrashFuzzTest.cpp" "tests/CMakeFiles/laminar_tests.dir/CrashFuzzTest.cpp.o" "gcc" "tests/CMakeFiles/laminar_tests.dir/CrashFuzzTest.cpp.o.d"
  "/root/repo/tests/DiagnosticsTest.cpp" "tests/CMakeFiles/laminar_tests.dir/DiagnosticsTest.cpp.o" "gcc" "tests/CMakeFiles/laminar_tests.dir/DiagnosticsTest.cpp.o.d"
  "/root/repo/tests/DominatorsTest.cpp" "tests/CMakeFiles/laminar_tests.dir/DominatorsTest.cpp.o" "gcc" "tests/CMakeFiles/laminar_tests.dir/DominatorsTest.cpp.o.d"
  "/root/repo/tests/DriverTest.cpp" "tests/CMakeFiles/laminar_tests.dir/DriverTest.cpp.o" "gcc" "tests/CMakeFiles/laminar_tests.dir/DriverTest.cpp.o.d"
  "/root/repo/tests/EquivalenceTest.cpp" "tests/CMakeFiles/laminar_tests.dir/EquivalenceTest.cpp.o" "gcc" "tests/CMakeFiles/laminar_tests.dir/EquivalenceTest.cpp.o.d"
  "/root/repo/tests/FaultTest.cpp" "tests/CMakeFiles/laminar_tests.dir/FaultTest.cpp.o" "gcc" "tests/CMakeFiles/laminar_tests.dir/FaultTest.cpp.o.d"
  "/root/repo/tests/FeedbackLoopTest.cpp" "tests/CMakeFiles/laminar_tests.dir/FeedbackLoopTest.cpp.o" "gcc" "tests/CMakeFiles/laminar_tests.dir/FeedbackLoopTest.cpp.o.d"
  "/root/repo/tests/GoldenTest.cpp" "tests/CMakeFiles/laminar_tests.dir/GoldenTest.cpp.o" "gcc" "tests/CMakeFiles/laminar_tests.dir/GoldenTest.cpp.o.d"
  "/root/repo/tests/GraphTest.cpp" "tests/CMakeFiles/laminar_tests.dir/GraphTest.cpp.o" "gcc" "tests/CMakeFiles/laminar_tests.dir/GraphTest.cpp.o.d"
  "/root/repo/tests/IRParserTest.cpp" "tests/CMakeFiles/laminar_tests.dir/IRParserTest.cpp.o" "gcc" "tests/CMakeFiles/laminar_tests.dir/IRParserTest.cpp.o.d"
  "/root/repo/tests/IRRoundTripTest.cpp" "tests/CMakeFiles/laminar_tests.dir/IRRoundTripTest.cpp.o" "gcc" "tests/CMakeFiles/laminar_tests.dir/IRRoundTripTest.cpp.o.d"
  "/root/repo/tests/InterpreterTest.cpp" "tests/CMakeFiles/laminar_tests.dir/InterpreterTest.cpp.o" "gcc" "tests/CMakeFiles/laminar_tests.dir/InterpreterTest.cpp.o.d"
  "/root/repo/tests/LangSemanticsTest.cpp" "tests/CMakeFiles/laminar_tests.dir/LangSemanticsTest.cpp.o" "gcc" "tests/CMakeFiles/laminar_tests.dir/LangSemanticsTest.cpp.o.d"
  "/root/repo/tests/LexerTest.cpp" "tests/CMakeFiles/laminar_tests.dir/LexerTest.cpp.o" "gcc" "tests/CMakeFiles/laminar_tests.dir/LexerTest.cpp.o.d"
  "/root/repo/tests/LimitsTest.cpp" "tests/CMakeFiles/laminar_tests.dir/LimitsTest.cpp.o" "gcc" "tests/CMakeFiles/laminar_tests.dir/LimitsTest.cpp.o.d"
  "/root/repo/tests/LirTest.cpp" "tests/CMakeFiles/laminar_tests.dir/LirTest.cpp.o" "gcc" "tests/CMakeFiles/laminar_tests.dir/LirTest.cpp.o.d"
  "/root/repo/tests/LoweringTest.cpp" "tests/CMakeFiles/laminar_tests.dir/LoweringTest.cpp.o" "gcc" "tests/CMakeFiles/laminar_tests.dir/LoweringTest.cpp.o.d"
  "/root/repo/tests/MemOptTest.cpp" "tests/CMakeFiles/laminar_tests.dir/MemOptTest.cpp.o" "gcc" "tests/CMakeFiles/laminar_tests.dir/MemOptTest.cpp.o.d"
  "/root/repo/tests/ObservabilityTest.cpp" "tests/CMakeFiles/laminar_tests.dir/ObservabilityTest.cpp.o" "gcc" "tests/CMakeFiles/laminar_tests.dir/ObservabilityTest.cpp.o.d"
  "/root/repo/tests/OptTest.cpp" "tests/CMakeFiles/laminar_tests.dir/OptTest.cpp.o" "gcc" "tests/CMakeFiles/laminar_tests.dir/OptTest.cpp.o.d"
  "/root/repo/tests/ParallelTest.cpp" "tests/CMakeFiles/laminar_tests.dir/ParallelTest.cpp.o" "gcc" "tests/CMakeFiles/laminar_tests.dir/ParallelTest.cpp.o.d"
  "/root/repo/tests/ParserTest.cpp" "tests/CMakeFiles/laminar_tests.dir/ParserTest.cpp.o" "gcc" "tests/CMakeFiles/laminar_tests.dir/ParserTest.cpp.o.d"
  "/root/repo/tests/PerfModelTest.cpp" "tests/CMakeFiles/laminar_tests.dir/PerfModelTest.cpp.o" "gcc" "tests/CMakeFiles/laminar_tests.dir/PerfModelTest.cpp.o.d"
  "/root/repo/tests/ProfileTest.cpp" "tests/CMakeFiles/laminar_tests.dir/ProfileTest.cpp.o" "gcc" "tests/CMakeFiles/laminar_tests.dir/ProfileTest.cpp.o.d"
  "/root/repo/tests/ProgramFilesTest.cpp" "tests/CMakeFiles/laminar_tests.dir/ProgramFilesTest.cpp.o" "gcc" "tests/CMakeFiles/laminar_tests.dir/ProgramFilesTest.cpp.o.d"
  "/root/repo/tests/PropertyTest.cpp" "tests/CMakeFiles/laminar_tests.dir/PropertyTest.cpp.o" "gcc" "tests/CMakeFiles/laminar_tests.dir/PropertyTest.cpp.o.d"
  "/root/repo/tests/SSABuilderTest.cpp" "tests/CMakeFiles/laminar_tests.dir/SSABuilderTest.cpp.o" "gcc" "tests/CMakeFiles/laminar_tests.dir/SSABuilderTest.cpp.o.d"
  "/root/repo/tests/ScheduleTest.cpp" "tests/CMakeFiles/laminar_tests.dir/ScheduleTest.cpp.o" "gcc" "tests/CMakeFiles/laminar_tests.dir/ScheduleTest.cpp.o.d"
  "/root/repo/tests/SemaTest.cpp" "tests/CMakeFiles/laminar_tests.dir/SemaTest.cpp.o" "gcc" "tests/CMakeFiles/laminar_tests.dir/SemaTest.cpp.o.d"
  "/root/repo/tests/SpscQueueTest.cpp" "tests/CMakeFiles/laminar_tests.dir/SpscQueueTest.cpp.o" "gcc" "tests/CMakeFiles/laminar_tests.dir/SpscQueueTest.cpp.o.d"
  "/root/repo/tests/SupportTest.cpp" "tests/CMakeFiles/laminar_tests.dir/SupportTest.cpp.o" "gcc" "tests/CMakeFiles/laminar_tests.dir/SupportTest.cpp.o.d"
  "/root/repo/tests/ToolTest.cpp" "tests/CMakeFiles/laminar_tests.dir/ToolTest.cpp.o" "gcc" "tests/CMakeFiles/laminar_tests.dir/ToolTest.cpp.o.d"
  "/root/repo/tests/VerifierTest.cpp" "tests/CMakeFiles/laminar_tests.dir/VerifierTest.cpp.o" "gcc" "tests/CMakeFiles/laminar_tests.dir/VerifierTest.cpp.o.d"
  "/root/repo/tests/VerifyTest.cpp" "tests/CMakeFiles/laminar_tests.dir/VerifyTest.cpp.o" "gcc" "tests/CMakeFiles/laminar_tests.dir/VerifyTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/CMakeFiles/laminar.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/laminar_testing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
