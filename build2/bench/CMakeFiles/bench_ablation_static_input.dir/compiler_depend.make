# Empty compiler generated dependencies file for bench_ablation_static_input.
# This may be replaced when dependencies are built.
