file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_static_input.dir/bench_ablation_static_input.cpp.o"
  "CMakeFiles/bench_ablation_static_input.dir/bench_ablation_static_input.cpp.o.d"
  "bench_ablation_static_input"
  "bench_ablation_static_input.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_static_input.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
