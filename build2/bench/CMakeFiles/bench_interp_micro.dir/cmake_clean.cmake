file(REMOVE_RECURSE
  "CMakeFiles/bench_interp_micro.dir/bench_interp_micro.cpp.o"
  "CMakeFiles/bench_interp_micro.dir/bench_interp_micro.cpp.o.d"
  "bench_interp_micro"
  "bench_interp_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_interp_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
