# Empty dependencies file for bench_interp_micro.
# This may be replaced when dependencies are built.
