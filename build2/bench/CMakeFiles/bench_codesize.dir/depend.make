# Empty dependencies file for bench_codesize.
# This may be replaced when dependencies are built.
