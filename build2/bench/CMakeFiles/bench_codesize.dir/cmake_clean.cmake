file(REMOVE_RECURSE
  "CMakeFiles/bench_codesize.dir/bench_codesize.cpp.o"
  "CMakeFiles/bench_codesize.dir/bench_codesize.cpp.o.d"
  "bench_codesize"
  "bench_codesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_codesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
