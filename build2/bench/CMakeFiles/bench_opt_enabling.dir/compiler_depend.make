# Empty compiler generated dependencies file for bench_opt_enabling.
# This may be replaced when dependencies are built.
