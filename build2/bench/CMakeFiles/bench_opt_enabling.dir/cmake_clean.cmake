file(REMOVE_RECURSE
  "CMakeFiles/bench_opt_enabling.dir/bench_opt_enabling.cpp.o"
  "CMakeFiles/bench_opt_enabling.dir/bench_opt_enabling.cpp.o.d"
  "bench_opt_enabling"
  "bench_opt_enabling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_opt_enabling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
