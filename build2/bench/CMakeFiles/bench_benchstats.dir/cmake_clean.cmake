file(REMOVE_RECURSE
  "CMakeFiles/bench_benchstats.dir/bench_benchstats.cpp.o"
  "CMakeFiles/bench_benchstats.dir/bench_benchstats.cpp.o.d"
  "bench_benchstats"
  "bench_benchstats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_benchstats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
