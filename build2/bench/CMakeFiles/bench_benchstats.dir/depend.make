# Empty dependencies file for bench_benchstats.
# This may be replaced when dependencies are built.
