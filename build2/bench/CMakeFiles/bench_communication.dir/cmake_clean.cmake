file(REMOVE_RECURSE
  "CMakeFiles/bench_communication.dir/bench_communication.cpp.o"
  "CMakeFiles/bench_communication.dir/bench_communication.cpp.o.d"
  "bench_communication"
  "bench_communication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_communication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
