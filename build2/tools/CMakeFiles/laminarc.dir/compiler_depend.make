# Empty compiler generated dependencies file for laminarc.
# This may be replaced when dependencies are built.
