file(REMOVE_RECURSE
  "CMakeFiles/laminarc.dir/laminarc.cpp.o"
  "CMakeFiles/laminarc.dir/laminarc.cpp.o.d"
  "laminarc"
  "laminarc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laminarc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
