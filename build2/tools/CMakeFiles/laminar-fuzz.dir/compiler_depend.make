# Empty compiler generated dependencies file for laminar-fuzz.
# This may be replaced when dependencies are built.
