file(REMOVE_RECURSE
  "CMakeFiles/laminar-fuzz.dir/laminar-fuzz.cpp.o"
  "CMakeFiles/laminar-fuzz.dir/laminar-fuzz.cpp.o.d"
  "laminar-fuzz"
  "laminar-fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laminar-fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
