file(REMOVE_RECURSE
  "CMakeFiles/laminar-calibrate.dir/laminar-calibrate.cpp.o"
  "CMakeFiles/laminar-calibrate.dir/laminar-calibrate.cpp.o.d"
  "laminar-calibrate"
  "laminar-calibrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laminar-calibrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
