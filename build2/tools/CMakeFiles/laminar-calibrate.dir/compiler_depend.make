# Empty compiler generated dependencies file for laminar-calibrate.
# This may be replaced when dependencies are built.
