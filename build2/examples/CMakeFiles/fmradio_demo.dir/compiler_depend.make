# Empty compiler generated dependencies file for fmradio_demo.
# This may be replaced when dependencies are built.
