file(REMOVE_RECURSE
  "CMakeFiles/fmradio_demo.dir/fmradio_demo.cpp.o"
  "CMakeFiles/fmradio_demo.dir/fmradio_demo.cpp.o.d"
  "fmradio_demo"
  "fmradio_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmradio_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
