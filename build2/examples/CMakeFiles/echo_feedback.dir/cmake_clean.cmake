file(REMOVE_RECURSE
  "CMakeFiles/echo_feedback.dir/echo_feedback.cpp.o"
  "CMakeFiles/echo_feedback.dir/echo_feedback.cpp.o.d"
  "echo_feedback"
  "echo_feedback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/echo_feedback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
