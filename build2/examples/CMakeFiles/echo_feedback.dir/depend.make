# Empty dependencies file for echo_feedback.
# This may be replaced when dependencies are built.
