file(REMOVE_RECURSE
  "CMakeFiles/bitonic_ir_demo.dir/bitonic_ir_demo.cpp.o"
  "CMakeFiles/bitonic_ir_demo.dir/bitonic_ir_demo.cpp.o.d"
  "bitonic_ir_demo"
  "bitonic_ir_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitonic_ir_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
