# Empty compiler generated dependencies file for bitonic_ir_demo.
# This may be replaced when dependencies are built.
