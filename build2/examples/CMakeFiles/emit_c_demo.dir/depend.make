# Empty dependencies file for emit_c_demo.
# This may be replaced when dependencies are built.
