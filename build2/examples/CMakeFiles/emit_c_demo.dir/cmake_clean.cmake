file(REMOVE_RECURSE
  "CMakeFiles/emit_c_demo.dir/emit_c_demo.cpp.o"
  "CMakeFiles/emit_c_demo.dir/emit_c_demo.cpp.o.d"
  "emit_c_demo"
  "emit_c_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emit_c_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
