src/CMakeFiles/laminar.dir/lir/Type.cpp.o: /root/repo/src/lir/Type.cpp \
 /usr/include/stdc-predef.h /root/repo/src/lir/Type.h
