
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/Checks.cpp" "src/CMakeFiles/laminar.dir/analysis/Checks.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/analysis/Checks.cpp.o.d"
  "/root/repo/src/analysis/Lattice.cpp" "src/CMakeFiles/laminar.dir/analysis/Lattice.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/analysis/Lattice.cpp.o.d"
  "/root/repo/src/analysis/RangeAnalysis.cpp" "src/CMakeFiles/laminar.dir/analysis/RangeAnalysis.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/analysis/RangeAnalysis.cpp.o.d"
  "/root/repo/src/analysis/StateAnalysis.cpp" "src/CMakeFiles/laminar.dir/analysis/StateAnalysis.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/analysis/StateAnalysis.cpp.o.d"
  "/root/repo/src/codegen/CEmitter.cpp" "src/CMakeFiles/laminar.dir/codegen/CEmitter.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/codegen/CEmitter.cpp.o.d"
  "/root/repo/src/driver/Driver.cpp" "src/CMakeFiles/laminar.dir/driver/Driver.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/driver/Driver.cpp.o.d"
  "/root/repo/src/frontend/AST.cpp" "src/CMakeFiles/laminar.dir/frontend/AST.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/frontend/AST.cpp.o.d"
  "/root/repo/src/frontend/ConstEval.cpp" "src/CMakeFiles/laminar.dir/frontend/ConstEval.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/frontend/ConstEval.cpp.o.d"
  "/root/repo/src/frontend/Lexer.cpp" "src/CMakeFiles/laminar.dir/frontend/Lexer.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/frontend/Lexer.cpp.o.d"
  "/root/repo/src/frontend/Parser.cpp" "src/CMakeFiles/laminar.dir/frontend/Parser.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/frontend/Parser.cpp.o.d"
  "/root/repo/src/frontend/Sema.cpp" "src/CMakeFiles/laminar.dir/frontend/Sema.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/frontend/Sema.cpp.o.d"
  "/root/repo/src/graph/GraphBuilder.cpp" "src/CMakeFiles/laminar.dir/graph/GraphBuilder.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/graph/GraphBuilder.cpp.o.d"
  "/root/repo/src/graph/StreamGraph.cpp" "src/CMakeFiles/laminar.dir/graph/StreamGraph.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/graph/StreamGraph.cpp.o.d"
  "/root/repo/src/interp/Fault.cpp" "src/CMakeFiles/laminar.dir/interp/Fault.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/interp/Fault.cpp.o.d"
  "/root/repo/src/interp/Interpreter.cpp" "src/CMakeFiles/laminar.dir/interp/Interpreter.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/interp/Interpreter.cpp.o.d"
  "/root/repo/src/lir/BasicBlock.cpp" "src/CMakeFiles/laminar.dir/lir/BasicBlock.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/lir/BasicBlock.cpp.o.d"
  "/root/repo/src/lir/Dominators.cpp" "src/CMakeFiles/laminar.dir/lir/Dominators.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/lir/Dominators.cpp.o.d"
  "/root/repo/src/lir/Function.cpp" "src/CMakeFiles/laminar.dir/lir/Function.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/lir/Function.cpp.o.d"
  "/root/repo/src/lir/IRBuilder.cpp" "src/CMakeFiles/laminar.dir/lir/IRBuilder.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/lir/IRBuilder.cpp.o.d"
  "/root/repo/src/lir/IRParser.cpp" "src/CMakeFiles/laminar.dir/lir/IRParser.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/lir/IRParser.cpp.o.d"
  "/root/repo/src/lir/Instruction.cpp" "src/CMakeFiles/laminar.dir/lir/Instruction.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/lir/Instruction.cpp.o.d"
  "/root/repo/src/lir/Module.cpp" "src/CMakeFiles/laminar.dir/lir/Module.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/lir/Module.cpp.o.d"
  "/root/repo/src/lir/Printer.cpp" "src/CMakeFiles/laminar.dir/lir/Printer.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/lir/Printer.cpp.o.d"
  "/root/repo/src/lir/SSABuilder.cpp" "src/CMakeFiles/laminar.dir/lir/SSABuilder.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/lir/SSABuilder.cpp.o.d"
  "/root/repo/src/lir/Type.cpp" "src/CMakeFiles/laminar.dir/lir/Type.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/lir/Type.cpp.o.d"
  "/root/repo/src/lir/Value.cpp" "src/CMakeFiles/laminar.dir/lir/Value.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/lir/Value.cpp.o.d"
  "/root/repo/src/lir/Verifier.cpp" "src/CMakeFiles/laminar.dir/lir/Verifier.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/lir/Verifier.cpp.o.d"
  "/root/repo/src/lower/ChannelAccessors.cpp" "src/CMakeFiles/laminar.dir/lower/ChannelAccessors.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/lower/ChannelAccessors.cpp.o.d"
  "/root/repo/src/lower/FifoLowering.cpp" "src/CMakeFiles/laminar.dir/lower/FifoLowering.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/lower/FifoLowering.cpp.o.d"
  "/root/repo/src/lower/LaminarLowering.cpp" "src/CMakeFiles/laminar.dir/lower/LaminarLowering.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/lower/LaminarLowering.cpp.o.d"
  "/root/repo/src/lower/WorkLowering.cpp" "src/CMakeFiles/laminar.dir/lower/WorkLowering.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/lower/WorkLowering.cpp.o.d"
  "/root/repo/src/opt/ConstantFold.cpp" "src/CMakeFiles/laminar.dir/opt/ConstantFold.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/opt/ConstantFold.cpp.o.d"
  "/root/repo/src/opt/CopyProp.cpp" "src/CMakeFiles/laminar.dir/opt/CopyProp.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/opt/CopyProp.cpp.o.d"
  "/root/repo/src/opt/DCE.cpp" "src/CMakeFiles/laminar.dir/opt/DCE.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/opt/DCE.cpp.o.d"
  "/root/repo/src/opt/GVN.cpp" "src/CMakeFiles/laminar.dir/opt/GVN.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/opt/GVN.cpp.o.d"
  "/root/repo/src/opt/GlobalFold.cpp" "src/CMakeFiles/laminar.dir/opt/GlobalFold.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/opt/GlobalFold.cpp.o.d"
  "/root/repo/src/opt/MemForward.cpp" "src/CMakeFiles/laminar.dir/opt/MemForward.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/opt/MemForward.cpp.o.d"
  "/root/repo/src/opt/PassManager.cpp" "src/CMakeFiles/laminar.dir/opt/PassManager.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/opt/PassManager.cpp.o.d"
  "/root/repo/src/opt/Pipelines.cpp" "src/CMakeFiles/laminar.dir/opt/Pipelines.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/opt/Pipelines.cpp.o.d"
  "/root/repo/src/opt/SCCP.cpp" "src/CMakeFiles/laminar.dir/opt/SCCP.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/opt/SCCP.cpp.o.d"
  "/root/repo/src/opt/SimplifyCFG.cpp" "src/CMakeFiles/laminar.dir/opt/SimplifyCFG.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/opt/SimplifyCFG.cpp.o.d"
  "/root/repo/src/parallel/Fission.cpp" "src/CMakeFiles/laminar.dir/parallel/Fission.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/parallel/Fission.cpp.o.d"
  "/root/repo/src/parallel/ParallelLowering.cpp" "src/CMakeFiles/laminar.dir/parallel/ParallelLowering.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/parallel/ParallelLowering.cpp.o.d"
  "/root/repo/src/parallel/ParallelRunner.cpp" "src/CMakeFiles/laminar.dir/parallel/ParallelRunner.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/parallel/ParallelRunner.cpp.o.d"
  "/root/repo/src/parallel/Partitioner.cpp" "src/CMakeFiles/laminar.dir/parallel/Partitioner.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/parallel/Partitioner.cpp.o.d"
  "/root/repo/src/parallel/PlanSelection.cpp" "src/CMakeFiles/laminar.dir/parallel/PlanSelection.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/parallel/PlanSelection.cpp.o.d"
  "/root/repo/src/perfmodel/PlatformModel.cpp" "src/CMakeFiles/laminar.dir/perfmodel/PlatformModel.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/perfmodel/PlatformModel.cpp.o.d"
  "/root/repo/src/profile/Profile.cpp" "src/CMakeFiles/laminar.dir/profile/Profile.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/profile/Profile.cpp.o.d"
  "/root/repo/src/schedule/Schedule.cpp" "src/CMakeFiles/laminar.dir/schedule/Schedule.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/schedule/Schedule.cpp.o.d"
  "/root/repo/src/schedule/ScheduleSim.cpp" "src/CMakeFiles/laminar.dir/schedule/ScheduleSim.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/schedule/ScheduleSim.cpp.o.d"
  "/root/repo/src/suite/Autocor.cpp" "src/CMakeFiles/laminar.dir/suite/Autocor.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/suite/Autocor.cpp.o.d"
  "/root/repo/src/suite/BeamFormer.cpp" "src/CMakeFiles/laminar.dir/suite/BeamFormer.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/suite/BeamFormer.cpp.o.d"
  "/root/repo/src/suite/BitonicSort.cpp" "src/CMakeFiles/laminar.dir/suite/BitonicSort.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/suite/BitonicSort.cpp.o.d"
  "/root/repo/src/suite/ChannelVocoder.cpp" "src/CMakeFiles/laminar.dir/suite/ChannelVocoder.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/suite/ChannelVocoder.cpp.o.d"
  "/root/repo/src/suite/DCT.cpp" "src/CMakeFiles/laminar.dir/suite/DCT.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/suite/DCT.cpp.o.d"
  "/root/repo/src/suite/DES.cpp" "src/CMakeFiles/laminar.dir/suite/DES.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/suite/DES.cpp.o.d"
  "/root/repo/src/suite/Echo.cpp" "src/CMakeFiles/laminar.dir/suite/Echo.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/suite/Echo.cpp.o.d"
  "/root/repo/src/suite/FFT.cpp" "src/CMakeFiles/laminar.dir/suite/FFT.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/suite/FFT.cpp.o.d"
  "/root/repo/src/suite/FMRadio.cpp" "src/CMakeFiles/laminar.dir/suite/FMRadio.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/suite/FMRadio.cpp.o.d"
  "/root/repo/src/suite/FilterBank.cpp" "src/CMakeFiles/laminar.dir/suite/FilterBank.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/suite/FilterBank.cpp.o.d"
  "/root/repo/src/suite/Lattice.cpp" "src/CMakeFiles/laminar.dir/suite/Lattice.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/suite/Lattice.cpp.o.d"
  "/root/repo/src/suite/MatrixMult.cpp" "src/CMakeFiles/laminar.dir/suite/MatrixMult.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/suite/MatrixMult.cpp.o.d"
  "/root/repo/src/suite/MovingAverage.cpp" "src/CMakeFiles/laminar.dir/suite/MovingAverage.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/suite/MovingAverage.cpp.o.d"
  "/root/repo/src/suite/RateConvert.cpp" "src/CMakeFiles/laminar.dir/suite/RateConvert.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/suite/RateConvert.cpp.o.d"
  "/root/repo/src/suite/Suite.cpp" "src/CMakeFiles/laminar.dir/suite/Suite.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/suite/Suite.cpp.o.d"
  "/root/repo/src/suite/TDE.cpp" "src/CMakeFiles/laminar.dir/suite/TDE.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/suite/TDE.cpp.o.d"
  "/root/repo/src/support/Diagnostics.cpp" "src/CMakeFiles/laminar.dir/support/Diagnostics.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/support/Diagnostics.cpp.o.d"
  "/root/repo/src/support/Limits.cpp" "src/CMakeFiles/laminar.dir/support/Limits.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/support/Limits.cpp.o.d"
  "/root/repo/src/support/Rational.cpp" "src/CMakeFiles/laminar.dir/support/Rational.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/support/Rational.cpp.o.d"
  "/root/repo/src/support/Remarks.cpp" "src/CMakeFiles/laminar.dir/support/Remarks.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/support/Remarks.cpp.o.d"
  "/root/repo/src/support/Statistics.cpp" "src/CMakeFiles/laminar.dir/support/Statistics.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/support/Statistics.cpp.o.d"
  "/root/repo/src/support/Trace.cpp" "src/CMakeFiles/laminar.dir/support/Trace.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/support/Trace.cpp.o.d"
  "/root/repo/src/verify/IRInvariants.cpp" "src/CMakeFiles/laminar.dir/verify/IRInvariants.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/verify/IRInvariants.cpp.o.d"
  "/root/repo/src/verify/PlanCertifier.cpp" "src/CMakeFiles/laminar.dir/verify/PlanCertifier.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/verify/PlanCertifier.cpp.o.d"
  "/root/repo/src/verify/ProtocolCheck.cpp" "src/CMakeFiles/laminar.dir/verify/ProtocolCheck.cpp.o" "gcc" "src/CMakeFiles/laminar.dir/verify/ProtocolCheck.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
