# Empty dependencies file for laminar.
# This may be replaced when dependencies are built.
