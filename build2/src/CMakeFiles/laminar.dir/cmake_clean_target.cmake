file(REMOVE_RECURSE
  "liblaminar.a"
)
