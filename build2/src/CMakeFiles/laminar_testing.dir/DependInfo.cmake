
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/testing/AnalysisOracle.cpp" "src/CMakeFiles/laminar_testing.dir/testing/AnalysisOracle.cpp.o" "gcc" "src/CMakeFiles/laminar_testing.dir/testing/AnalysisOracle.cpp.o.d"
  "/root/repo/src/testing/Differ.cpp" "src/CMakeFiles/laminar_testing.dir/testing/Differ.cpp.o" "gcc" "src/CMakeFiles/laminar_testing.dir/testing/Differ.cpp.o.d"
  "/root/repo/src/testing/FaultInject.cpp" "src/CMakeFiles/laminar_testing.dir/testing/FaultInject.cpp.o" "gcc" "src/CMakeFiles/laminar_testing.dir/testing/FaultInject.cpp.o.d"
  "/root/repo/src/testing/Mutator.cpp" "src/CMakeFiles/laminar_testing.dir/testing/Mutator.cpp.o" "gcc" "src/CMakeFiles/laminar_testing.dir/testing/Mutator.cpp.o.d"
  "/root/repo/src/testing/ProgramGen.cpp" "src/CMakeFiles/laminar_testing.dir/testing/ProgramGen.cpp.o" "gcc" "src/CMakeFiles/laminar_testing.dir/testing/ProgramGen.cpp.o.d"
  "/root/repo/src/testing/Reducer.cpp" "src/CMakeFiles/laminar_testing.dir/testing/Reducer.cpp.o" "gcc" "src/CMakeFiles/laminar_testing.dir/testing/Reducer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/CMakeFiles/laminar.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
