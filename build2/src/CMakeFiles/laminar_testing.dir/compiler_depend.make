# Empty compiler generated dependencies file for laminar_testing.
# This may be replaced when dependencies are built.
