file(REMOVE_RECURSE
  "CMakeFiles/laminar_testing.dir/testing/AnalysisOracle.cpp.o"
  "CMakeFiles/laminar_testing.dir/testing/AnalysisOracle.cpp.o.d"
  "CMakeFiles/laminar_testing.dir/testing/Differ.cpp.o"
  "CMakeFiles/laminar_testing.dir/testing/Differ.cpp.o.d"
  "CMakeFiles/laminar_testing.dir/testing/FaultInject.cpp.o"
  "CMakeFiles/laminar_testing.dir/testing/FaultInject.cpp.o.d"
  "CMakeFiles/laminar_testing.dir/testing/Mutator.cpp.o"
  "CMakeFiles/laminar_testing.dir/testing/Mutator.cpp.o.d"
  "CMakeFiles/laminar_testing.dir/testing/ProgramGen.cpp.o"
  "CMakeFiles/laminar_testing.dir/testing/ProgramGen.cpp.o.d"
  "CMakeFiles/laminar_testing.dir/testing/Reducer.cpp.o"
  "CMakeFiles/laminar_testing.dir/testing/Reducer.cpp.o.d"
  "liblaminar_testing.a"
  "liblaminar_testing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laminar_testing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
