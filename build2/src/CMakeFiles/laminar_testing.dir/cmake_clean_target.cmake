file(REMOVE_RECURSE
  "liblaminar_testing.a"
)
