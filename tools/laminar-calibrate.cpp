//===--- laminar-calibrate.cpp - Measured platform-profile generator -------===//
//
// Measures what the execution engine on *this* host actually pays per
// operation class and per cross-core slab handshake, and writes the
// result as a `laminar-platform-profile-v1` file for
// `laminarc --platform-profile=FILE`. The partition planner and its
// cost gate (src/parallel/PlanSelection.cpp) otherwise price plans
// with the paper's static i7-2600K constants; a calibrated profile
// replaces guesses with measurements, which can legitimately flip the
// gate's parallel-vs-sequential decision (see docs/PARALLEL.md).
//
// Method:
//   1. Every suite benchmark is compiled sequentially and wall-clocked
//      (best-of-R at an iteration count sized from a short probe run),
//      giving one (operation counts -> nanoseconds) observation per
//      benchmark.
//   2. The per-class costs are fitted by least squares over five
//      aggregated classes (int-like, float ALU, float-div/libm,
//      memory, input/output) via the 5x5 normal equations; classes the
//      suite under-determines, or a degenerate fit, fall back to
//      uniformly rescaling the reference platform so total predicted
//      time matches total measured time.
//   3. The slab handshake cost (sync-per-slab) is measured directly:
//      two threads ping-pong a pair of cache-line-padded atomics, the
//      same release/acquire + line-transfer pattern as the runtime's
//      ticket gates; one handoff is half a measured round trip.
//
// Costs are written in cycles at the reference clock (freq-ghz is
// carried over), since that is the unit PlanSelection compares in.
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "perfmodel/PlatformModel.h"
#include "suite/Suite.h"
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

using namespace laminar;

namespace {

uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct Observation {
  std::string Name;
  double Feature[5]; // int-like, float-alu, float-div/libm, memory, io
  double WallNs;
};

/// One timed sequential interpreter run; exits the tool on failure.
uint64_t timedRunNs(const driver::Compilation &C, int64_t Iters,
                    interp::Counters *CountersOut) {
  const uint64_t T0 = nowNs();
  interp::RunResult R = driver::runWithRandomInput(C, Iters, 1);
  const uint64_t T1 = nowNs();
  if (!R.Ok) {
    std::fprintf(stderr, "laminar-calibrate: fatal: run failed: %s\n",
                 R.Error.c_str());
    std::exit(1);
  }
  if (CountersOut)
    *CountersOut = R.SteadyCounters;
  return T1 - T0;
}

/// Solves A x = b (5x5 normal equations) by Gaussian elimination with
/// partial pivoting. Returns false when the system is singular.
bool solve5(double A[5][5], double B[5], double X[5]) {
  int Perm[5] = {0, 1, 2, 3, 4};
  for (int Col = 0; Col < 5; ++Col) {
    int Pivot = Col;
    for (int Row = Col + 1; Row < 5; ++Row)
      if (std::fabs(A[Perm[Row]][Col]) > std::fabs(A[Perm[Pivot]][Col]))
        Pivot = Row;
    std::swap(Perm[Col], Perm[Pivot]);
    const double Diag = A[Perm[Col]][Col];
    if (std::fabs(Diag) < 1e-9)
      return false;
    for (int Row = Col + 1; Row < 5; ++Row) {
      const double F = A[Perm[Row]][Col] / Diag;
      for (int K = Col; K < 5; ++K)
        A[Perm[Row]][K] -= F * A[Perm[Col]][K];
      B[Perm[Row]] -= F * B[Perm[Col]];
    }
  }
  for (int Col = 4; Col >= 0; --Col) {
    double Acc = B[Perm[Col]];
    for (int K = Col + 1; K < 5; ++K)
      Acc -= A[Perm[Col]][K] * X[K];
    X[Col] = Acc / A[Perm[Col]][Col];
  }
  return true;
}

/// Measured nanoseconds for one cross-thread slab handshake: a
/// release-store / acquire-load ping-pong between two threads on
/// cache-line-padded counters, round trip halved. This is the pattern
/// both runtimes' ticket gates execute per slab.
double measureSyncNs(int RoundTrips) {
  struct alignas(64) PaddedAtomic {
    std::atomic<int64_t> V{0};
  };
  PaddedAtomic Ping, Pong;
  // The waits yield like the runtime's ticket gates do, so an
  // oversubscribed host (fewer cores than workers) is measured at the
  // cost the runtime would actually pay there, not at a full
  // scheduling quantum per handoff.
  std::thread Echo([&] {
    for (int64_t I = 1; I <= RoundTrips; ++I) {
      while (Ping.V.load(std::memory_order_acquire) < I)
        std::this_thread::yield();
      Pong.V.store(I, std::memory_order_release);
    }
  });
  const uint64_t T0 = nowNs();
  for (int64_t I = 1; I <= RoundTrips; ++I) {
    Ping.V.store(I, std::memory_order_release);
    while (Pong.V.load(std::memory_order_acquire) < I)
      std::this_thread::yield();
  }
  const uint64_t T1 = nowNs();
  Echo.join();
  return static_cast<double>(T1 - T0) / (2.0 * RoundTrips);
}

void usage() {
  std::fprintf(
      stderr,
      "usage: laminar-calibrate [-o FILE] [--quick]\n"
      "  Measures this host's per-operation-class interpreter costs and\n"
      "  cross-core handshake latency, and writes a platform profile\n"
      "  (laminar-platform-profile-v1) for laminarc "
      "--platform-profile=FILE.\n"
      "  -o FILE   output path (default: stdout)\n"
      "  --quick   shorter runs (coarser numbers; for tests/smoke)\n");
}

} // namespace

int main(int argc, char **argv) {
  std::string OutPath;
  bool Quick = false;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "-o") == 0 && I + 1 < argc) {
      OutPath = argv[++I];
    } else if (std::strcmp(argv[I], "--quick") == 0) {
      Quick = true;
    } else {
      usage();
      return 1;
    }
  }

  const perfmodel::PlatformModel *Base = perfmodel::findPlatform("i7-2600K");
  if (!Base) {
    std::fprintf(stderr, "laminar-calibrate: fatal: reference platform "
                         "model missing\n");
    return 1;
  }
  const uint64_t TargetRunNs = Quick ? 8'000'000 : 120'000'000;
  const int Reps = Quick ? 1 : 3;

  std::vector<Observation> Obs;
  for (const suite::Benchmark &B : suite::allBenchmarks()) {
    driver::CompileOptions O;
    O.TopName = B.Top;
    O.Mode = driver::LoweringMode::Laminar;
    O.OptLevel = 2;
    driver::Compilation C = driver::compile(B.Source, O);
    if (!C.Ok) {
      std::fprintf(stderr, "laminar-calibrate: fatal: %s failed to "
                           "compile:\n%s\n",
                   B.Name.c_str(), C.ErrorLog.c_str());
      return 1;
    }
    interp::Counters Cnt;
    const uint64_t ProbeNs = std::max<uint64_t>(1, timedRunNs(C, 32, &Cnt));
    const int64_t Iters = std::clamp<int64_t>(
        static_cast<int64_t>(32 * TargetRunNs / ProbeNs), 32, 1'000'000);
    uint64_t Best = UINT64_MAX;
    for (int R = 0; R < Reps; ++R)
      Best = std::min(Best, timedRunNs(C, Iters, &Cnt));
    Observation Ob;
    Ob.Name = B.Name;
    Ob.Feature[0] = static_cast<double>(Cnt.IntAlu + Cnt.Cmp + Cnt.Cast +
                                        Cnt.Select + Cnt.Phi + Cnt.Branch);
    Ob.Feature[1] = static_cast<double>(Cnt.FloatAlu);
    Ob.Feature[2] = static_cast<double>(Cnt.FloatDiv + Cnt.MathCall);
    Ob.Feature[3] = static_cast<double>(Cnt.memoryAccesses());
    Ob.Feature[4] = static_cast<double>(Cnt.Input + Cnt.Output);
    Ob.WallNs = static_cast<double>(Best);
    Obs.push_back(Ob);
    std::fprintf(stderr, "laminar-calibrate: %-16s %8lld iters  %9.2f ms\n",
                 B.Name.c_str(), static_cast<long long>(Iters),
                 Ob.WallNs / 1e6);
  }

  // Normal equations over the five aggregated classes.
  double AtA[5][5] = {}, AtB[5] = {}, W[5] = {};
  for (const Observation &Ob : Obs)
    for (int R = 0; R < 5; ++R) {
      for (int Col = 0; Col < 5; ++Col)
        AtA[R][Col] += Ob.Feature[R] * Ob.Feature[Col];
      AtB[R] += Ob.Feature[R] * Ob.WallNs;
    }
  bool Fitted = solve5(AtA, AtB, W);
  // A well-posed calibration has every class cost positive; a suite
  // that under-determines one (collinear columns, or a class the
  // benchmarks barely exercise) shows up as a non-positive weight.
  for (int R = 0; R < 5 && Fitted; ++R)
    if (!(W[R] > 0))
      Fitted = false;
  if (!Fitted) {
    // Fallback: uniform rescale of the reference platform so its total
    // predicted time matches total measured time. Preserves the paper
    // model's per-class ratios but fixes its absolute scale.
    double ModelNs = 0, MeasNs = 0;
    for (const Observation &Ob : Obs) {
      ModelNs += (Ob.Feature[0] * Base->IntAlu + Ob.Feature[1] * Base->FloatAlu +
                  Ob.Feature[2] * Base->FloatDiv +
                  Ob.Feature[3] * Base->Load +
                  Ob.Feature[4] * Base->InputOutput) /
                 Base->FreqGHz;
      MeasNs += Ob.WallNs;
    }
    const double Scale = ModelNs > 0 ? MeasNs / ModelNs : 1.0;
    W[0] = Base->IntAlu * Scale / Base->FreqGHz;
    W[1] = Base->FloatAlu * Scale / Base->FreqGHz;
    W[2] = Base->FloatDiv * Scale / Base->FreqGHz;
    W[3] = Base->Load * Scale / Base->FreqGHz;
    W[4] = Base->InputOutput * Scale / Base->FreqGHz;
    std::fprintf(stderr, "laminar-calibrate: least-squares fit "
                         "degenerate; using uniform rescale x%.2f\n",
                 Scale);
  }

  const double SyncNs = measureSyncNs(Quick ? 20'000 : 200'000);
  std::fprintf(stderr,
               "laminar-calibrate: slab handshake %.1f ns/handoff\n",
               SyncNs);

  // Nanoseconds -> cycles at the carried-over reference clock, the
  // unit every consumer (PlanSelection, the energy model) expects.
  perfmodel::PlatformModel PM = *Base;
  PM.Name = "calibrated";
  const double ToCycles = PM.FreqGHz; // cycles = ns * GHz
  PM.IntAlu = PM.Cmp = PM.Cast = PM.Select = PM.Phi = PM.Branch =
      W[0] * ToCycles;
  PM.FloatAlu = W[1] * ToCycles;
  PM.FloatDiv = PM.MathCall = W[2] * ToCycles;
  PM.Load = PM.Store = W[3] * ToCycles;
  PM.InputOutput = W[4] * ToCycles;
  PM.SyncPerSlab = SyncNs * ToCycles;

  const std::string Text = perfmodel::profileText(PM);
  if (OutPath.empty()) {
    std::fputs(Text.c_str(), stdout);
  } else {
    std::ofstream Out(OutPath);
    if (!Out) {
      std::fprintf(stderr, "laminar-calibrate: fatal: cannot write %s\n",
                   OutPath.c_str());
      return 1;
    }
    Out << Text;
    std::fprintf(stderr, "laminar-calibrate: wrote %s\n", OutPath.c_str());
  }
  return 0;
}
