//===--- laminarc.cpp - Command-line driver --------------------------------===//
//
// laminarc <benchmark|-> [options]
//   --mode=fifo|laminar   lowering strategy (default laminar)
//   --parallel=N          partition the steady state across N workers
//                         (threaded interpretation / threaded C; 0 = off)
//   --parallel-force      bypass the cost-model gate (take the best
//                         parallel plan even when a slowdown is predicted)
//   --parallel-batch=K    force K steady iterations per slab handoff
//                         (default: picked from the platform model)
//   --parallel-slab=S     base credit window in slabs per partition-
//                         distance step (pipeline skewing; default 2)
//   --no-parallel-fission disable stateless-filter fission
//   --opt=N               optimization level 0..2 (default 2)
//   --emit=ir|c|graph|schedule|run|stats
//   --iters=N             steady iterations for --emit=run (default 16)
//   --seed=N              input seed (default 1)
//   --top=Name            top stream when compiling from a file
//   --max-nodes=N         graph node limit override
//   --max-reps=N          steady-state repetition limit override
//   --max-firings=N       total steady firings limit override
//   --max-ir-insts=N      unrolled-IR instruction budget override
//   --max-peek=N          peek window limit override
//   --max-channel-tokens=N  per-channel token/buffer limit override
//   --max-errors=N        diagnostic cutoff override (0 = unlimited)
//   --max-steps=N         interpreter step budget for --emit=run (per
//                         worker; default 2e9)
//   --deadline-ms=N       watchdog deadline for parallel --emit=run
//                         (0 = off): a stuck run is cancelled and the
//                         fault report carries a progress snapshot
//   --inject-fault=SITE:WORKER:COUNT  deterministic fault injection
//                         (testing): trip at the COUNT-th step|pop|push
//                         of WORKER (--emit=run), or trap worker WORKER
//                         at slab COUNT-1 (--emit=c, parallel)
//   --fault-json=FILE     write the structured run report
//                         (laminar-fault-report-v1) after --emit=run
//   --profile-json=FILE   write runtime telemetry
//                         (laminar-runtime-stats-v1) after --emit=run
//   --profile-trace       record per-worker event rings during
//                         --emit=run and merge them into --trace-json
//                         as worker timelines
//   --profile-c           --emit=c only: compile the same telemetry
//                         into the generated C (the binary's second
//                         argument names the output file, else stderr)
//   --platform-profile=FILE  load a measured platform cost model
//                         (laminar-platform-profile-v1, written by
//                         laminar-calibrate) for the partitioner and
//                         the parallel cost gate
//   --no-degrade          error instead of Laminar->FIFO fallback
//   --verify-each         re-verify the module (SSA verifier plus the
//                         structural invariants: rate consistency,
//                         token liveness, partition isolation) after
//                         every optimization pass, attributing the
//                         first broken invariant to the pass
//   --no-verify-plan      skip static plan-safety certification of the
//                         selected parallel plan (deadlock-freedom,
//                         ring capacity; on by default)
//   --analyze             run the compile-time stream-safety checks
//                         (proved violations are errors)
//   --Werror-analysis     --analyze with warnings promoted to errors
//   --trace-json=FILE     write a Chrome trace (chrome://tracing) of
//                         the compilation phases
//   --time-report         print a phase timing table to stderr
//   --remarks=FILE        write optimization remarks (YAML documents)
//   --remarks-filter=STR  keep only remarks whose pass name contains STR
//   --stats-json=FILE     write all counters as one JSON document
//
// The positional argument is a registered benchmark name, or a path to
// a .str file, or "-" for stdin.
//===----------------------------------------------------------------------===//

#include "codegen/CEmitter.h"
#include "driver/Driver.h"
#include "lir/Printer.h"
#include "suite/Suite.h"
#include "verify/ProtocolCheck.h"
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <vector>

using namespace laminar;

static int usage() {
  std::cerr
      << "usage: laminarc <benchmark|file.str|-> [--mode=fifo|laminar]\n"
      << "  [--parallel=N] [--parallel-force] [--parallel-batch=K]\n"
      << "  [--parallel-slab=S] [--no-parallel-fission] [--opt=0|1|2]\n"
      << "  [--emit=ir|c|graph|dot|schedule|run|stats]\n"
      << "  [--iters=N] [--seed=N] [--top=Name]\n"
      << "  [--max-nodes=N] [--max-reps=N] [--max-firings=N]\n"
      << "  [--max-ir-insts=N] [--max-peek=N] [--max-channel-tokens=N]\n"
      << "  [--max-errors=N] [--max-steps=N] [--no-degrade]\n"
      << "  [--verify-each] [--no-verify-plan] [--analyze]\n"
      << "  [--Werror-analysis] [--deadline-ms=N]\n"
      << "  [--inject-fault=step|pop|push:WORKER:COUNT]\n"
      << "  [--fault-json=FILE] [--profile-json=FILE] [--profile-trace]\n"
      << "  [--profile-c] [--platform-profile=FILE]\n"
      << "  [--trace-json=FILE] [--time-report] [--remarks=FILE]\n"
      << "  [--remarks-filter=STR] [--stats-json=FILE]\n\nbenchmarks:\n";
  for (const auto &B : suite::allBenchmarks())
    std::cerr << "  " << B.Name << " - " << B.Description << "\n";
  return 1;
}

int main(int argc, char **argv) {
  if (argc < 2)
    return usage();

  std::string Target = argv[1];
  std::string Mode = "laminar", Emit = "ir", Top;
  unsigned Opt = 2, Parallel = 0;
  int64_t Iters = 16;
  uint64_t Seed = 1;
  CompilerLimits Limits;
  parallel::ParallelTuning Tuning;
  bool AllowDegrade = true, Analyze = false, WerrorAnalysis = false;
  bool VerifyEach = false, VerifyPlan = true;
  std::string TraceJsonPath, RemarksPath, RemarksFilter, StatsJsonPath;
  bool TimeReport = false;
  driver::RunParams RunParams;
  std::string FaultJsonPath, ProfileJsonPath, PlatformProfilePath;
  bool ProfileTrace = false, ProfileC = false;

  for (int I = 2; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Eat = [&](const char *Prefix, std::string &Out) {
      size_t N = std::strlen(Prefix);
      if (Arg.compare(0, N, Prefix) != 0)
        return false;
      Out = Arg.substr(N);
      return true;
    };
    // Range-validating integer parse: rejects trailing garbage,
    // out-of-range magnitudes and values std::stoul would silently
    // wrap (e.g. --parallel-batch=-1), with the offending flag named.
    auto ParseInt = [](const std::string &S) -> std::optional<long long> {
      try {
        size_t Pos = 0;
        long long N = std::stoll(S, &Pos);
        if (Pos != S.size())
          return std::nullopt;
        return N;
      } catch (const std::exception &) {
        return std::nullopt;
      }
    };
    auto FlagError = [&](const std::string &Why) {
      std::cerr << "error: " << Arg << ": " << Why << "\n";
      return 1;
    };
    std::string V;
    try {
      if (Eat("--mode=", V))
        Mode = V;
      else if (Eat("--emit=", V))
        Emit = V;
      else if (Eat("--opt=", V))
        Opt = static_cast<unsigned>(std::stoul(V));
      else if (Eat("--parallel=", V)) {
        std::optional<long long> N = ParseInt(V);
        if (!N || *N < 0 || *N > 4096)
          return FlagError("expected a worker count in [0, 4096]");
        Parallel = static_cast<unsigned>(*N);
      } else if (Arg == "--parallel-force")
        Tuning.Force = true;
      else if (Eat("--parallel-batch=", V)) {
        std::optional<long long> N = ParseInt(V);
        if (!N || *N < 0 || *N > 4096)
          return FlagError(
              "expected 0 (auto) or a batch factor in [1, 4096]");
        Tuning.Batch = static_cast<unsigned>(*N);
      } else if (Eat("--parallel-slab=", V)) {
        std::optional<long long> N = ParseInt(V);
        if (!N || *N > (1LL << 20) || *N < -(1LL << 20))
          return FlagError("expected a credit window with magnitude <= "
                           "2^20 (non-positive windows are rejected by "
                           "plan certification)");
        Tuning.SlabBase = *N;
      } else if (Arg == "--no-parallel-fission")
        Tuning.Fission = parallel::ParallelTuning::FissionMode::Off;
      else if (Eat("--iters=", V))
        Iters = std::stoll(V);
      else if (Eat("--seed=", V))
        Seed = std::stoull(V);
      else if (Eat("--top=", V))
        Top = V;
      else if (Eat("--max-nodes=", V))
        Limits.MaxGraphNodes = std::stoll(V);
      else if (Eat("--max-reps=", V))
        Limits.MaxRepetition = std::stoll(V);
      else if (Eat("--max-firings=", V))
        Limits.MaxSteadyFirings = std::stoll(V);
      else if (Eat("--max-ir-insts=", V))
        Limits.MaxUnrolledInsts = std::stoll(V);
      else if (Eat("--max-peek=", V))
        Limits.MaxPeekWindow = std::stoll(V);
      else if (Eat("--max-channel-tokens=", V))
        Limits.MaxChannelTokens = std::stoll(V);
      else if (Eat("--max-errors=", V))
        Limits.MaxErrors = static_cast<unsigned>(std::stoul(V));
      else if (Eat("--max-steps=", V)) {
        std::optional<long long> N = ParseInt(V);
        if (!N || *N < 1)
          return FlagError("expected a positive interpreter step "
                           "budget (0 would run nothing)");
        Limits.MaxInterpSteps = *N;
      } else if (Eat("--deadline-ms=", V))
        RunParams.DeadlineMs = std::stoll(V);
      else if (Eat("--inject-fault=", V)) {
        size_t C1 = V.find(':'), C2 = V.find(':', C1 + 1);
        if (C1 == std::string::npos || C2 == std::string::npos)
          return usage();
        std::string Site = V.substr(0, C1);
        if (Site == "step")
          RunParams.Inject.S = interp::FaultPoint::Site::Step;
        else if (Site == "pop")
          RunParams.Inject.S = interp::FaultPoint::Site::Pop;
        else if (Site == "push")
          RunParams.Inject.S = interp::FaultPoint::Site::Push;
        else
          return usage();
        RunParams.Inject.Worker =
            static_cast<unsigned>(std::stoul(V.substr(C1 + 1, C2 - C1 - 1)));
        RunParams.Inject.Count = std::stoull(V.substr(C2 + 1));
      } else if (Eat("--fault-json=", V))
        FaultJsonPath = V;
      else if (Eat("--profile-json=", V))
        ProfileJsonPath = V;
      else if (Arg == "--profile-trace")
        ProfileTrace = true;
      else if (Arg == "--profile-c")
        ProfileC = true;
      else if (Eat("--platform-profile=", V))
        PlatformProfilePath = V;
      else if (Arg == "--no-degrade")
        AllowDegrade = false;
      else if (Arg == "--verify-each")
        VerifyEach = true;
      else if (Arg == "--no-verify-plan")
        VerifyPlan = false;
      else if (Arg == "--analyze")
        Analyze = true;
      else if (Arg == "--Werror-analysis")
        Analyze = WerrorAnalysis = true;
      else if (Eat("--trace-json=", V))
        TraceJsonPath = V;
      else if (Eat("--remarks=", V))
        RemarksPath = V;
      else if (Eat("--remarks-filter=", V))
        RemarksFilter = V;
      else if (Eat("--stats-json=", V))
        StatsJsonPath = V;
      else if (Arg == "--time-report")
        TimeReport = true;
      else
        return usage();
    } catch (const std::exception &) {
      return usage();
    }
  }

  std::string Source;
  if (const suite::Benchmark *B = suite::findBenchmark(Target)) {
    Source = B->Source;
    if (Top.empty())
      Top = B->Top;
  } else if (Target == "-") {
    std::ostringstream SS;
    SS << std::cin.rdbuf();
    Source = SS.str();
  } else {
    std::ifstream In(Target);
    if (!In) {
      std::cerr << "error: cannot open '" << Target << "'\n";
      return 1;
    }
    std::ostringstream SS;
    SS << In.rdbuf();
    Source = SS.str();
  }
  if (Top.empty()) {
    std::cerr << "error: --top=Name is required for file input\n";
    return 1;
  }

  TraceContext Trace;
  // --profile-trace needs the trace machinery on: the worker timelines
  // are merged into the same Chrome-trace document.
  Trace.setEnabled(!TraceJsonPath.empty() || TimeReport || ProfileTrace);
  RemarkEmitter Remarks;
  Remarks.setPassFilter(RemarksFilter);

  driver::CompileOptions Opts;
  Opts.TopName = Top;
  Opts.Mode = Mode == "fifo" ? driver::LoweringMode::Fifo
                             : driver::LoweringMode::Laminar;
  Opts.OptLevel = Opt;
  Opts.Parallel = Parallel;
  Opts.Tuning = Tuning;
  Opts.Limits = Limits;
  Opts.AllowDegradeToFifo = AllowDegrade;
  Opts.Analyze = Analyze;
  Opts.AnalysisWerror = WerrorAnalysis;
  Opts.VerifyEachPass = VerifyEach;
  Opts.VerifyPlan = VerifyPlan;
  if (Trace.enabled())
    Opts.Trace = &Trace;
  if (!RemarksPath.empty())
    Opts.Remarks = &Remarks;
  if (!PlatformProfilePath.empty()) {
    std::string Err;
    std::optional<perfmodel::PlatformModel> PM =
        perfmodel::loadProfile(PlatformProfilePath, Err);
    if (!PM) {
      std::cerr << "error: " << Err << "\n";
      return 1;
    }
    Opts.Platform = std::move(*PM);
  }
  driver::Compilation C = driver::compile(Source, Opts);

  // The observability outputs are written on failure too: a compile
  // that degrades or errors is exactly the one worth inspecting.
  auto WriteFile = [](const std::string &Path, const std::string &Text) {
    std::ofstream Out(Path);
    if (!Out) {
      std::cerr << "error: cannot write '" << Path << "'\n";
      return false;
    }
    Out << Text;
    return true;
  };
  // Run-scoped documents (fault report, runtime telemetry) captured by
  // --emit=run for the flush below. Keeping them in the one Flush path
  // guarantees that a faulted run still writes *every* requested
  // artifact — fault-json, stats-json, profile-json and the trace all
  // come out of the same exit sequence, and a failed write of any of
  // them is reflected in the exit code.
  std::string RunFaultJson, RunProfileJson;
  auto Flush = [&] {
    bool Ok = true;
    if (!TraceJsonPath.empty())
      Ok &= WriteFile(TraceJsonPath, Trace.chromeJson());
    if (!RemarksPath.empty())
      Ok &= WriteFile(RemarksPath, Remarks.str());
    if (!StatsJsonPath.empty())
      Ok &= WriteFile(StatsJsonPath, C.Stats.json());
    if (!FaultJsonPath.empty() && !RunFaultJson.empty())
      Ok &= WriteFile(FaultJsonPath, RunFaultJson);
    if (!ProfileJsonPath.empty() && !RunProfileJson.empty())
      Ok &= WriteFile(ProfileJsonPath, RunProfileJson);
    if (TimeReport)
      std::cerr << Trace.timeReport();
    return Ok;
  };

  if (!C.Ok) {
    std::cerr << C.ErrorLog;
    Flush();
    return 1;
  }
  // Surface warnings (notably the Laminar->FIFO degradation notice)
  // even on successful compilations.
  for (const Diagnostic &D : C.Diags)
    if (D.Kind == DiagKind::Warning)
      std::cerr << D.Loc.Line << ":" << D.Loc.Col << ": warning: "
                << D.Message << "\n";

  if (Emit == "ir") {
    std::cout << lir::printModule(*C.Module);
  } else if (Emit == "c") {
    codegen::CEmitOptions CE;
    CE.InputSeed = Seed;
    CE.DefaultIterations = Iters;
    if (C.Plan)
      CE.Plan = &*C.Plan;
    CE.Profile = ProfileC;
    // Fault injection maps to a hard trap in the chosen worker at slab
    // COUNT-1 (the emitted protocol has no step/pop/push granularity).
    if (RunParams.Inject.enabled() && C.Plan) {
      CE.InjectWorker = static_cast<int>(RunParams.Inject.Worker);
      CE.InjectSlab = static_cast<int64_t>(RunParams.Inject.Count) - 1;
      if (CE.InjectSlab < 0)
        CE.InjectSlab = 0;
    }
    std::string CSource = codegen::emitC(*C.Module, CE);
    // The protocol shape of the emitted threaded program is part of
    // the plan certificate: acquire-gated consumption, release
    // publishes, cancel polls in every spin, fault ordering.
    if (C.Plan && VerifyPlan) {
      std::vector<std::string> PV =
          verify::checkThreadedCProtocol(CSource, *C.Plan);
      if (!PV.empty()) {
        std::cerr << "error: emitted C violates the slab protocol:\n";
        for (const std::string &S : PV)
          std::cerr << "  " << S << "\n";
        Flush();
        return 1;
      }
    }
    std::cout << CSource;
  } else if (Emit == "graph") {
    std::cout << C.Graph->str();
  } else if (Emit == "dot") {
    std::cout << C.Graph->dot();
  } else if (Emit == "schedule") {
    std::cout << C.Sched->str();
  } else if (Emit == "stats") {
    std::cout << C.Stats.str();
  } else if (Emit == "run") {
    // Runtime telemetry: one Profiler per run, enabled by either
    // profile flag. Null stays null otherwise — the runner's hooks
    // degrade to a pointer test.
    const bool Profiling = !ProfileJsonPath.empty() || ProfileTrace;
    std::optional<profile::Profiler> Prof;
    profile::RunProfile Profile;
    if (Profiling) {
      Prof.emplace(C.Plan ? C.Plan->NumPartitions : 1,
                   ProfileTrace ? 4096 : 0);
      RunParams.Profiler = &*Prof;
      RunParams.ProfileOut = &Profile;
    }
    interp::RunResult R;
    {
      TraceScope Span(Opts.Trace, "interp");
      R = driver::runWithRandomInput(C, Iters, Seed, Opts.Trace, nullptr,
                                     RunParams);
    }
    RunFaultJson = R.Report.json();
    if (Profiling) {
      RunProfileJson = Profile.json();
      Profile.recordStats(C.Stats);
    }
    R.InitCounters.record(C.Stats, "interp.init");
    R.SteadyCounters.record(C.Stats, "interp.steady");
    C.Stats.add("interp.steady.iterations", static_cast<uint64_t>(Iters));
    // Per-filter dynamic firing counts, reconstructed from the static
    // schedule (the interpreter executes exactly init + reps * iters).
    for (const graph::Node *N : C.Sched->Order)
      C.Stats.add("interp.firings." + N->getName(),
                  static_cast<uint64_t>(C.Sched->initRepsOf(N) +
                                        C.Sched->repsOf(N) * Iters));
    if (!R.Ok) {
      std::cerr << "runtime error: " << R.Error << "\n";
      Flush();
      return 1;
    }
    if (R.Outputs.Ty == lir::TypeKind::Int) {
      for (int64_t V : R.Outputs.I)
        std::cout << V << "\n";
    } else {
      std::cout.precision(17);
      for (double V : R.Outputs.F)
        std::cout << V << "\n";
    }
    std::cerr << "init:   " << R.InitCounters.str() << "\n"
              << "steady: " << R.SteadyCounters.str() << "\n";
  } else {
    return usage();
  }
  return Flush() ? 0 : 1;
}
