//===--- laminard.cpp - stream server daemon ------------------------------===//
//
// The network face of the StreamServer: an AF_UNIX socket speaking
// line-delimited JSON — one request object per line in, one response
// object per line out. The protocol is a 1:1 projection of the C API
// (include/laminar.h); ci/check_server.py drives it end to end.
//
// Requests ({"op": ..., ...} — one per line):
//   {"op":"ping"}
//   {"op":"compile","source":S,"top":T,"opt":N?,"parallel":N?,
//    "fifo":B?,"degrade":B?}            -> {"ok":true,"plan":ID,
//                                           "cache-hit":B,"info":{...}}
//   {"op":"spawn","plan":ID}            -> {"ok":true,"instance":ID}
//   {"op":"push","instance":ID,"data":[...],"iterations":N}
//                                       -> {"ok":true,"status":"ok"}
//   {"op":"pull","instance":ID}         -> {"ok":true,"status":"ok",
//                                           "data":[...]}
//   {"op":"instance-stats","instance":ID} -> laminar-runtime-stats-v1
//   {"op":"fault","instance":ID}        -> report or {"faulted":false}
//   {"op":"cancel","instance":ID}
//   {"op":"free-instance","instance":ID}
//   {"op":"release-plan","plan":ID}
//   {"op":"stats"}                      -> server stats registry
//   {"op":"shutdown"}                   -> stops the daemon
//
// Errors: {"ok":false,"error":"..."}. Every connection is served by
// its own thread; plan/instance ids are daemon-global, so a pool of
// client connections can share instances (laminard serializes each
// instance's push/pull through the server, satisfying the per-instance
// producer/consumer contract with a per-instance connection mutex).
//
// The daemon deliberately binds only to a filesystem socket — it is a
// local embedding front door, not an internet service.
//
//===----------------------------------------------------------------------===//

#include "server/Json.h"
#include "server/Server.h"
#include <atomic>
#include <cstdio>
#include <cstring>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace laminar;

namespace {

struct Options {
  std::string SocketPath = "/tmp/laminard.sock";
  unsigned Workers = 0;
  size_t CacheEntries = 64;
  size_t CacheBytes = 256ull << 20;
  uint64_t DeadlineMs = 0;
};

void usage() {
  std::fprintf(
      stderr,
      "usage: laminard --socket PATH [--workers N] [--cache-entries N]\n"
      "                [--cache-bytes N] [--deadline-ms N]\n"
      "\n"
      "Stream server daemon: line-delimited JSON over an AF_UNIX\n"
      "socket. See docs/SERVER.md for the protocol.\n");
}

/// Daemon-global handle tables. Instances also live in the server's
/// own table; these add the wire-protocol ids and the per-instance
/// connection mutex that serializes push/pull across connections.
struct Daemon {
  explicit Daemon(const server::ServerConfig &C) : Server(C) {}

  server::StreamServer Server;
  std::atomic<bool> ShuttingDown{false};
  /// The listen socket, so the shutdown op can unblock accept().
  std::atomic<int> ListenFd{-1};

  std::mutex M;
  uint64_t NextPlanId = 1;
  std::unordered_map<uint64_t,
                     std::shared_ptr<const server::CompiledPlan>>
      Plans;
  struct InstanceSlot {
    std::shared_ptr<server::Instance> I;
    /// Serializes this instance's push/pull/free across connections so
    /// the per-instance SPSC producer/consumer contract holds no
    /// matter how clients shard work.
    std::shared_ptr<std::mutex> IoM = std::make_shared<std::mutex>();
    /// Wire batches are owned by the daemon (the socket buffer dies
    /// with the request line); each pushed batch is pinned here until
    /// its outputs have been pulled. Batches complete FIFO, so a
    /// successful pull unpins the front entry — without that, a
    /// long-lived streaming instance would leak one buffer per
    /// push/pull cycle for the life of the daemon.
    std::deque<std::shared_ptr<interp::TokenStream>> Pinned;
  };
  std::unordered_map<uint64_t, InstanceSlot> Slots;
};

json::ValuePtr errorReply(const std::string &Msg) {
  auto R = json::Value::object();
  R->set("ok", json::Value::boolean(false));
  R->set("error", json::Value::str(Msg));
  return R;
}

json::ValuePtr okReply() {
  auto R = json::Value::object();
  R->set("ok", json::Value::boolean(true));
  return R;
}

json::ValuePtr planInfo(const server::CompiledPlan &P) {
  auto V = json::Value::object();
  V->set("input-type", json::Value::str(P.inputType() == lir::TypeKind::Int
                                            ? "int"
                                            : "float"));
  V->set("output-type",
         json::Value::str(P.outputType() == lir::TypeKind::Int ? "int"
                                                               : "float"));
  V->set("input-per-iter",
         json::Value::number(static_cast<double>(P.inputPerIter())));
  V->set("input-for-init",
         json::Value::number(static_cast<double>(P.inputForInit())));
  V->set("output-per-iter",
         json::Value::number(static_cast<double>(P.outputPerIter())));
  V->set("partitions",
         json::Value::number(P.plan() ? P.plan()->NumPartitions : 1));
  V->set("degraded-to-fifo", json::Value::boolean(P.degradedToFifo()));
  return V;
}

json::ValuePtr handleCompile(Daemon &D, const json::Value &Req) {
  const std::string Source = Req.get("source")->asString();
  if (Source.empty())
    return errorReply("compile: missing source");
  server::PlanOptions PO;
  PO.TopName = Req.get("top")->asString();
  PO.OptLevel = static_cast<unsigned>(Req.get("opt")->asInt(2));
  PO.Parallel = static_cast<unsigned>(Req.get("parallel")->asInt(0));
  if (Req.get("fifo")->asBool(false))
    PO.Mode = driver::LoweringMode::Fifo;
  PO.AllowDegradeToFifo = Req.get("degrade")->asBool(true);
  std::string Err;
  bool Hit = false;
  auto P = D.Server.compile(Source, PO, Err, &Hit);
  if (!P)
    return errorReply("compile: " + Err);
  uint64_t Id;
  {
    std::lock_guard<std::mutex> L(D.M);
    Id = D.NextPlanId++;
    D.Plans.emplace(Id, P);
  }
  auto R = okReply();
  R->set("plan", json::Value::number(static_cast<double>(Id)));
  R->set("cache-hit", json::Value::boolean(Hit));
  R->set("info", planInfo(*P));
  return R;
}

json::ValuePtr handleSpawn(Daemon &D, const json::Value &Req) {
  const uint64_t PlanId =
      static_cast<uint64_t>(Req.get("plan")->asInt(0));
  std::shared_ptr<const server::CompiledPlan> P;
  {
    std::lock_guard<std::mutex> L(D.M);
    auto It = D.Plans.find(PlanId);
    if (It != D.Plans.end())
      P = It->second;
  }
  if (!P)
    return errorReply("spawn: unknown plan id");
  auto I = D.Server.spawn(std::move(P));
  if (!I)
    return errorReply("spawn: failed");
  {
    std::lock_guard<std::mutex> L(D.M);
    D.Slots[I->id()].I = I;
  }
  auto R = okReply();
  R->set("instance", json::Value::number(static_cast<double>(I->id())));
  return R;
}

bool findSlot(Daemon &D, const json::Value &Req, Daemon::InstanceSlot &Out,
              json::ValuePtr &Err) {
  const uint64_t Id =
      static_cast<uint64_t>(Req.get("instance")->asInt(0));
  std::lock_guard<std::mutex> L(D.M);
  auto It = D.Slots.find(Id);
  if (It == D.Slots.end()) {
    Err = errorReply("unknown instance id");
    return false;
  }
  Out = It->second;
  return true;
}

json::ValuePtr handlePush(Daemon &D, const json::Value &Req) {
  Daemon::InstanceSlot Slot;
  json::ValuePtr Err;
  if (!findSlot(D, Req, Slot, Err))
    return Err;
  const json::ValuePtr Data = Req.get("data");
  if (Data->kind() != json::Value::Kind::Array)
    return errorReply("push: data must be an array");
  const int64_t Iterations = Req.get("iterations")->asInt(1);
  // Materialize the wire batch into a daemon-owned stream: the
  // zero-copy contract needs the buffer alive until outputs are
  // pulled, and the socket line buffer is gone when this returns.
  auto S = std::make_shared<interp::TokenStream>();
  S->Ty = Slot.I->plan().inputType();
  for (const auto &E : Data->elements()) {
    if (E->kind() != json::Value::Kind::Number)
      return errorReply("push: data must be numeric");
    if (S->Ty == lir::TypeKind::Int)
      S->I.push_back(E->asInt());
    else
      S->F.push_back(E->asNumber());
  }
  std::lock_guard<std::mutex> IoL(*Slot.IoM);
  std::string PushErr;
  const server::BatchStatus St =
      D.Server.pushBatch(*Slot.I, S->view(), Iterations, &PushErr);
  if (St == server::BatchStatus::Ok) {
    std::lock_guard<std::mutex> L(D.M);
    auto It = D.Slots.find(Slot.I->id());
    if (It != D.Slots.end())
      It->second.Pinned.push_back(S);
  }
  auto R = json::Value::object();
  R->set("ok", json::Value::boolean(St == server::BatchStatus::Ok));
  R->set("status", json::Value::str(server::batchStatusName(St)));
  if (!PushErr.empty())
    R->set("error", json::Value::str(PushErr));
  return R;
}

json::ValuePtr handlePull(Daemon &D, const json::Value &Req) {
  Daemon::InstanceSlot Slot;
  json::ValuePtr Err;
  if (!findSlot(D, Req, Slot, Err))
    return Err;
  std::lock_guard<std::mutex> IoL(*Slot.IoM);
  interp::TokenStream Out;
  const server::BatchStatus St = Slot.I->pullBatch(Out);
  auto R = json::Value::object();
  R->set("ok", json::Value::boolean(St == server::BatchStatus::Ok));
  R->set("status", json::Value::str(server::batchStatusName(St)));
  if (St == server::BatchStatus::Ok) {
    auto Arr = json::Value::array();
    if (Out.Ty == lir::TypeKind::Int)
      for (int64_t V : Out.I)
        Arr->push(json::Value::number(static_cast<double>(V)));
    else
      for (double V : Out.F)
        Arr->push(json::Value::number(V));
    R->set("data", std::move(Arr));
    // Batches complete FIFO and an input buffer only has to outlive
    // its batch's pull (the zero-copy contract), so the oldest pinned
    // batch is now dead — unpin it. IoM is still held, so this pull
    // and the unpin are atomic w.r.t. other connections' pushes.
    std::lock_guard<std::mutex> L(D.M);
    auto It = D.Slots.find(Slot.I->id());
    if (It != D.Slots.end() && !It->second.Pinned.empty())
      It->second.Pinned.pop_front();
  } else if (St == server::BatchStatus::Faulted) {
    R->set("error",
           json::Value::str(Slot.I->faultReport().FirstFault.Message));
  }
  return R;
}

json::ValuePtr rawJsonReply(const std::string &Doc) {
  // The fault-report / stats emitters already produce JSON; re-parse so
  // the reply stays one well-formed object.
  std::string Err;
  if (auto V = json::parse(Doc, Err))
    return V;
  return errorReply("internal: bad JSON document: " + Err);
}

json::ValuePtr handleRequest(Daemon &D, const json::Value &Req) {
  const std::string Op = Req.get("op")->asString();
  if (Op == "ping")
    return okReply();
  if (Op == "compile")
    return handleCompile(D, Req);
  if (Op == "spawn")
    return handleSpawn(D, Req);
  if (Op == "push")
    return handlePush(D, Req);
  if (Op == "pull")
    return handlePull(D, Req);
  if (Op == "stats") {
    auto R = okReply();
    R->set("stats", rawJsonReply(D.Server.statsJson()));
    return R;
  }
  if (Op == "instance-stats") {
    Daemon::InstanceSlot Slot;
    json::ValuePtr Err;
    if (!findSlot(D, Req, Slot, Err))
      return Err;
    auto R = okReply();
    R->set("stats", rawJsonReply(Slot.I->runtimeStats().json()));
    return R;
  }
  if (Op == "fault") {
    Daemon::InstanceSlot Slot;
    json::ValuePtr Err;
    if (!findSlot(D, Req, Slot, Err))
      return Err;
    auto R = okReply();
    R->set("faulted", json::Value::boolean(Slot.I->faulted()));
    if (Slot.I->faulted())
      R->set("report", rawJsonReply(Slot.I->faultReport().json()));
    return R;
  }
  if (Op == "cancel") {
    Daemon::InstanceSlot Slot;
    json::ValuePtr Err;
    if (!findSlot(D, Req, Slot, Err))
      return Err;
    Slot.I->cancel();
    return okReply();
  }
  if (Op == "free-instance") {
    Daemon::InstanceSlot Slot;
    json::ValuePtr Err;
    if (!findSlot(D, Req, Slot, Err))
      return Err;
    std::lock_guard<std::mutex> IoL(*Slot.IoM);
    D.Server.freeInstance(Slot.I->id());
    std::lock_guard<std::mutex> L(D.M);
    D.Slots.erase(Slot.I->id());
    return okReply();
  }
  if (Op == "release-plan") {
    const uint64_t Id = static_cast<uint64_t>(Req.get("plan")->asInt(0));
    std::lock_guard<std::mutex> L(D.M);
    if (!D.Plans.erase(Id))
      return errorReply("unknown plan id");
    return okReply();
  }
  if (Op == "shutdown") {
    D.ShuttingDown.store(true, std::memory_order_release);
    const int Fd = D.ListenFd.load(std::memory_order_acquire);
    if (Fd >= 0)
      ::shutdown(Fd, SHUT_RDWR); // unblocks the accept loop
    return okReply();
  }
  return errorReply("unknown op: " + Op);
}

void serveConnection(Daemon &D, int Fd) {
  std::string Buf;
  char Chunk[4096];
  for (;;) {
    const ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
    if (N <= 0)
      break;
    Buf.append(Chunk, static_cast<size_t>(N));
    size_t Nl;
    while ((Nl = Buf.find('\n')) != std::string::npos) {
      const std::string Line = Buf.substr(0, Nl);
      Buf.erase(0, Nl + 1);
      if (Line.empty())
        continue;
      std::string Err;
      json::ValuePtr Req = json::parse(Line, Err);
      json::ValuePtr Reply =
          Req ? handleRequest(D, *Req)
              : errorReply("bad request JSON: " + Err);
      std::string Out = Reply->dump();
      Out += '\n';
      size_t Off = 0;
      while (Off < Out.size()) {
        const ssize_t W = ::write(Fd, Out.data() + Off, Out.size() - Off);
        if (W <= 0)
          goto done;
        Off += static_cast<size_t>(W);
      }
      if (D.ShuttingDown.load(std::memory_order_acquire))
        goto done;
    }
  }
done:
  ::close(Fd);
}

} // namespace

int main(int argc, char **argv) {
  Options Opt;
  for (int I = 1; I < argc; ++I) {
    const std::string A = argv[I];
    auto Next = [&](const char *Flag) -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "laminard: %s needs a value\n", Flag);
        std::exit(2);
      }
      return argv[++I];
    };
    if (A == "--socket")
      Opt.SocketPath = Next("--socket");
    else if (A == "--workers")
      Opt.Workers = static_cast<unsigned>(std::atoi(Next("--workers")));
    else if (A == "--cache-entries")
      Opt.CacheEntries =
          static_cast<size_t>(std::atoll(Next("--cache-entries")));
    else if (A == "--cache-bytes")
      Opt.CacheBytes =
          static_cast<size_t>(std::atoll(Next("--cache-bytes")));
    else if (A == "--deadline-ms")
      Opt.DeadlineMs =
          static_cast<uint64_t>(std::atoll(Next("--deadline-ms")));
    else if (A == "--help" || A == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "laminard: unknown flag %s\n", A.c_str());
      usage();
      return 2;
    }
  }

  server::ServerConfig C;
  C.Workers = Opt.Workers;
  C.CacheEntries = Opt.CacheEntries;
  C.CacheBytes = Opt.CacheBytes;
  C.InstanceDeadlineMs = Opt.DeadlineMs;
  Daemon D(C);

  const int Listen = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Listen < 0) {
    std::perror("laminard: socket");
    return 1;
  }
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Opt.SocketPath.size() >= sizeof(Addr.sun_path)) {
    std::fprintf(stderr, "laminard: socket path too long\n");
    return 1;
  }
  std::strncpy(Addr.sun_path, Opt.SocketPath.c_str(),
               sizeof(Addr.sun_path) - 1);
  ::unlink(Opt.SocketPath.c_str());
  if (::bind(Listen, reinterpret_cast<sockaddr *>(&Addr),
             sizeof(Addr)) < 0) {
    std::perror("laminard: bind");
    return 1;
  }
  if (::listen(Listen, 64) < 0) {
    std::perror("laminard: listen");
    return 1;
  }
  D.ListenFd.store(Listen, std::memory_order_release);
  std::fprintf(stderr, "laminard: listening on %s (%u workers)\n",
               Opt.SocketPath.c_str(), D.Server.config().Workers);

  std::vector<std::thread> Conns;
  while (!D.ShuttingDown.load(std::memory_order_acquire)) {
    const int Fd = ::accept(Listen, nullptr, nullptr);
    if (Fd < 0)
      break;
    Conns.emplace_back([&D, Fd] { serveConnection(D, Fd); });
    if (D.ShuttingDown.load(std::memory_order_acquire))
      break;
  }
  ::close(Listen);
  for (std::thread &T : Conns)
    T.join();
  ::unlink(Opt.SocketPath.c_str());
  return 0;
}
