//===--- laminar-fuzz.cpp - Differential stream-program fuzzer ------------===//
//
// laminar-fuzz [options] [reproducer.str ...]
//   --seed=N         base seed for program generation (default 1)
//   --iters=N        number of random programs (default 100)
//   --corpus=DIR     reproducer + report directory (default fuzz-corpus)
//   --runs=N         interpreter steady iterations per config (default 4)
//   --input-seed=N   randomized-input seed (default 0xC0FFEE)
//   --max-stages=N   generator stage budget (default 5)
//   --top=Name       top stream for replayed files (default FuzzTop)
//   --max-seconds=N  wall-clock budget, 0 = unlimited (default 0)
//   --no-cc          skip the emitted-C cross-check
//   --no-roundtrip   skip the textual-IR round-trip check
//
// With positional .str files the tool replays saved reproducers through
// the same oracle instead of generating programs. Without --max-seconds
// all output is deterministic for a fixed flag set.
//
// Exit code: 0 when every program passed, 1 on any failure or usage
// error.
//===----------------------------------------------------------------------===//

#include "testing/Differ.h"
#include "testing/ProgramGen.h"
#include "testing/Reducer.h"
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

using namespace laminar;
namespace lt = laminar::testing;

namespace {

int usage() {
  std::cerr
      << "usage: laminar-fuzz [options] [reproducer.str ...]\n"
      << "  --seed=N --iters=N --corpus=DIR --runs=N --input-seed=N\n"
      << "  --max-stages=N --top=Name --max-seconds=N --no-cc"
      << " --no-roundtrip\n";
  return 1;
}

/// Per-iteration generator seed: decorrelates neighbouring iterations
/// of one base seed without ever colliding across iterations.
uint64_t iterSeed(uint64_t Base, uint64_t Iter) {
  uint64_t S = Base * 0x9E3779B97F4A7C15ULL + Iter + 1;
  S ^= S >> 29;
  S *= 0xBF58476D1CE4E5B9ULL;
  S ^= S >> 32;
  return S;
}

/// Renders one failure as a corpus report block.
std::string reportBlock(const std::string &Title, const lt::DiffResult &D) {
  std::ostringstream OS;
  OS << Title << "\n"
     << "  status: " << lt::diffStatusName(D.Status) << "\n"
     << "  config: " << D.Config << "\n"
     << "  detail: " << D.Detail << "\n";
  return OS.str();
}

struct ReplayFile {
  std::string Path;
  std::string Source;
};

} // namespace

int main(int argc, char **argv) {
  uint64_t Seed = 1;
  int64_t Iters = 100;
  std::string Corpus = "fuzz-corpus";
  std::string Top = "FuzzTop";
  int64_t MaxSeconds = 0;
  lt::DiffOptions DiffOpts;
  lt::GenOptions GenOpts;
  std::vector<std::string> Replays;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Eat = [&](const char *Prefix, std::string &Out) {
      size_t N = std::strlen(Prefix);
      if (Arg.compare(0, N, Prefix) != 0)
        return false;
      Out = Arg.substr(N);
      return true;
    };
    std::string V;
    try {
      if (Eat("--seed=", V))
        Seed = std::stoull(V);
      else if (Eat("--iters=", V))
        Iters = std::stoll(V);
      else if (Eat("--corpus=", V))
        Corpus = V;
      else if (Eat("--runs=", V))
        DiffOpts.Iterations = std::stoll(V);
      else if (Eat("--input-seed=", V))
        DiffOpts.InputSeed = std::stoull(V);
      else if (Eat("--max-stages=", V))
        GenOpts.MaxStages = static_cast<int>(std::stol(V));
      else if (Eat("--top=", V))
        Top = V;
      else if (Eat("--max-seconds=", V))
        MaxSeconds = std::stoll(V);
      else if (Arg == "--no-cc")
        DiffOpts.CheckC = false;
      else if (Arg == "--no-roundtrip")
        DiffOpts.CheckRoundTrip = false;
      else if (!Arg.empty() && Arg[0] == '-')
        return usage();
      else
        Replays.push_back(Arg);
    } catch (const std::exception &) {
      return usage();
    }
  }
  if (GenOpts.MaxStages < GenOpts.MinStages)
    GenOpts.MinStages = 1;

  // --- Replay mode -------------------------------------------------------
  if (!Replays.empty()) {
    int Failures = 0;
    for (const std::string &Path : Replays) {
      std::ifstream In(Path);
      if (!In) {
        std::cerr << "error: cannot open '" << Path << "'\n";
        return 1;
      }
      std::ostringstream SS;
      SS << In.rdbuf();
      std::string Source = SS.str();
      // Reproducers carry their top stream in a "// top: Name" header.
      std::string FileTop = Top;
      size_t Pos = Source.find("// top: ");
      if (Pos != std::string::npos) {
        size_t End = Source.find('\n', Pos);
        FileTop = Source.substr(Pos + 8, End - Pos - 8);
      }
      lt::DiffResult D = lt::diffProgram(Source, FileTop, DiffOpts);
      // A frontend reject during replay is almost always a wrong top
      // stream (fuzzer-written reproducers never have that status), so
      // surface it as a failure rather than a silent pass.
      if (D.failed() || D.Status == lt::DiffStatus::FrontendReject) {
        ++Failures;
        std::cout << "FAIL " << Path << "\n"
                  << reportBlock("  replay failure:", D);
        if (D.Status == lt::DiffStatus::FrontendReject)
          std::cout << "  hint: check the '// top: Name' header or pass "
                       "--top=Name\n";
      } else {
        std::cout << "PASS " << Path << " ("
                  << lt::diffStatusName(D.Status) << ")\n";
      }
    }
    std::cout << "replayed " << Replays.size() << " file(s), " << Failures
              << " failure(s)\n";
    return Failures == 0 ? 0 : 1;
  }

  // --- Fuzzing mode ------------------------------------------------------
  std::error_code EC;
  std::filesystem::create_directories(Corpus, EC);
  if (EC) {
    std::cerr << "error: cannot create corpus directory '" << Corpus
              << "': " << EC.message() << "\n";
    return 1;
  }
  if (DiffOpts.CheckC && !lt::hostCompilerAvailable())
    DiffOpts.CheckC = false;

  std::ostringstream Report;
  Report << "laminar-fuzz seed=" << Seed << " iters=" << Iters
         << " runs=" << DiffOpts.Iterations
         << " input-seed=" << DiffOpts.InputSeed
         << " cc=" << (DiffOpts.CheckC ? "on" : "off")
         << " roundtrip=" << (DiffOpts.CheckRoundTrip ? "on" : "off")
         << "\n";

  auto Start = std::chrono::steady_clock::now();
  int64_t Done = 0;
  int64_t Rejects = 0;
  int64_t Failures = 0;

  for (int64_t I = 0; I < Iters; ++I) {
    if (MaxSeconds > 0) {
      auto Elapsed = std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::steady_clock::now() - Start);
      if (Elapsed.count() >= MaxSeconds)
        break;
    }
    uint64_t PSeed = iterSeed(Seed, static_cast<uint64_t>(I));
    lt::ProgramSpec P = lt::generateProgram(PSeed, GenOpts);
    P.Top = Top;
    std::string Source = lt::renderSource(P);
    lt::DiffResult D = lt::diffProgram(Source, P.Top, DiffOpts);
    ++Done;
    if (D.Status == lt::DiffStatus::FrontendReject) {
      ++Rejects;
      continue;
    }
    if (!D.failed())
      continue;

    ++Failures;
    std::string Name =
        "fail-" + std::to_string(Seed) + "-" + std::to_string(I);
    Report << reportBlock("failure " + Name + " (" + lt::describe(P) + ")",
                          D);

    lt::ReduceOptions RO;
    RO.Diff = DiffOpts;
    lt::ReduceResult Red = lt::reduceProgram(P, D, RO);
    Report << "  reduced: " << Red.Steps << " step(s), " << Red.Evals
           << " eval(s), " << lt::describe(Red.Minimal) << "\n";

    std::ofstream Str(Corpus + "/" + Name + ".str");
    Str << "// laminar-fuzz reproducer\n"
        << "// top: " << Red.Minimal.Top << "\n"
        << "// seed: " << Seed << " iter: " << I << " gen-seed: " << PSeed
        << "\n"
        << "// status: " << lt::diffStatusName(Red.Failure.Status)
        << " config: " << Red.Failure.Config << "\n"
        << Red.Source;
    std::ofstream Rep(Corpus + "/" + Name + ".report.txt");
    Rep << reportBlock("original (" + lt::describe(P) + ")", D)
        << reportBlock("reduced (" + lt::describe(Red.Minimal) + ")",
                       Red.Failure)
        << "reduction: " << Red.Steps << " step(s), " << Red.Evals
        << " eval(s)\n\n"
        << "original source:\n"
        << Source;
  }

  Report << "programs=" << Done << " ok=" << (Done - Rejects - Failures)
         << " frontend-reject=" << Rejects << " failures=" << Failures
         << "\n";

  std::ofstream Out(Corpus + "/report.txt");
  Out << Report.str();
  std::cout << Report.str();
  return Failures == 0 ? 0 : 1;
}
