//===--- laminar-fuzz.cpp - Differential and crash-mode fuzzer ------------===//
//
// laminar-fuzz [options] [reproducer.str ...]
//   --mode=diff|parallel|crash|analyze|fault
//                    oracle: differential (default), differential with
//                    the threaded configurations (parallel-vs-fifo-O0),
//                    crash-free, static-analysis no-false-positives,
//                    or fault-containment (seeded injection into the
//                    threaded runtime; see testing/FaultInject.h)
//   --seed=N         base seed for program generation (default 1)
//   --iters=N        number of random programs (default 100)
//   --corpus=DIR     reproducer + report directory (default fuzz-corpus)
//   --runs=N         interpreter steady iterations per config (default 4)
//   --input-seed=N   randomized-input seed (default 0xC0FFEE)
//   --max-stages=N   generator stage budget (default 5)
//   --mutations=N    crash mode: max mutations per input (default 4)
//   --top=Name       top stream for replayed files (default FuzzTop)
//   --max-seconds=N  wall-clock budget, 0 = unlimited (default 0)
//   --no-cc          skip the emitted-C cross-check
//   --no-roundtrip   skip the textual-IR round-trip check
//
// Diff mode generates rate-consistent programs and compares every
// lowering/optimization configuration against the fifo-O0 reference.
// Parallel mode is diff mode with the threaded configurations added:
// each program also runs partitioned across 2 and 4 workers (fifo-O0
// and laminar-O2), interpreted on real threads and cross-checked as
// threaded C, all bit-exact against the sequential fifo-O0 reference.
// Crash mode mutates the generated source into adversarial byte soup
// and checks the crash-free invariant: the compiler either accepts the
// input or rejects it with a located error diagnostic — never crashes
// (build with sanitizers to make the "never crashes" half bite). Before
// each crash check the input is written to <corpus>/crash-current.str,
// so a hard crash leaves its own reproducer behind.
// Analyze mode feeds generated programs and their mutated variants to
// the static-analysis oracle: the analyzer must reject with located
// errors only, and every claim it proves about always-executed code
// must be confirmed by an interpreter trap on a concrete run.
// Fault mode compiles each program for the threaded runtime and
// injects one seed-derived fault (step/pop/push site); every injected
// fault must terminate within the watchdog deadline with a located
// structured report, bit-identical across reruns for clean programs.
// A deterministic quarter of the iterations (seed % 4 == 0) also runs
// the threaded-C leg unless --no-cc: the compiled binary must exit 42
// with a one-line stderr report, never block.
//
// With positional .str files the tool replays saved reproducers through
// the selected oracle instead of generating programs. Without
// --max-seconds all output is deterministic for a fixed flag set.
//
// Exit code: 0 when every program passed, 1 on any failure or usage
// error. Each failure prints its reproducer path on a "reproducer:"
// line.
//===----------------------------------------------------------------------===//

#include "testing/AnalysisOracle.h"
#include "testing/Differ.h"
#include "testing/FaultInject.h"
#include "testing/Mutator.h"
#include "testing/ProgramGen.h"
#include "testing/Reducer.h"
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

using namespace laminar;
namespace lt = laminar::testing;

namespace {

int usage() {
  std::cerr
      << "usage: laminar-fuzz [options] [reproducer.str ...]\n"
      << "  --mode=diff|parallel|crash|analyze|fault --seed=N --iters=N\n"
      << "  --corpus=DIR\n"
      << "  --runs=N\n"
      << "  --input-seed=N --max-stages=N --mutations=N --top=Name\n"
      << "  --max-seconds=N --no-cc --no-roundtrip\n";
  return 1;
}

/// Per-iteration generator seed: decorrelates neighbouring iterations
/// of one base seed without ever colliding across iterations.
uint64_t iterSeed(uint64_t Base, uint64_t Iter) {
  uint64_t S = Base * 0x9E3779B97F4A7C15ULL + Iter + 1;
  S ^= S >> 29;
  S *= 0xBF58476D1CE4E5B9ULL;
  S ^= S >> 32;
  return S;
}

/// Renders one failure as a corpus report block.
std::string reportBlock(const std::string &Title, const lt::DiffResult &D) {
  std::ostringstream OS;
  OS << Title << "\n"
     << "  status: " << lt::diffStatusName(D.Status) << "\n"
     << "  config: " << D.Config << "\n"
     << "  detail: " << D.Detail << "\n";
  return OS.str();
}

std::string readFileOrEmpty(const std::string &Path, bool &Ok) {
  std::ifstream In(Path);
  Ok = static_cast<bool>(In);
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

/// Extracts the "// top: Name" header a reproducer carries, if any.
std::string headerTop(const std::string &Source, const std::string &Fallback) {
  size_t Pos = Source.find("// top: ");
  if (Pos == std::string::npos)
    return Fallback;
  size_t End = Source.find('\n', Pos);
  return Source.substr(Pos + 8, End - Pos - 8);
}

} // namespace

int main(int argc, char **argv) {
  uint64_t Seed = 1;
  int64_t Iters = 100;
  std::string Corpus = "fuzz-corpus";
  std::string Top = "FuzzTop";
  std::string Mode = "diff";
  int64_t MaxSeconds = 0;
  lt::DiffOptions DiffOpts;
  lt::GenOptions GenOpts;
  lt::MutateOptions MutOpts;
  std::vector<std::string> Replays;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Eat = [&](const char *Prefix, std::string &Out) {
      size_t N = std::strlen(Prefix);
      if (Arg.compare(0, N, Prefix) != 0)
        return false;
      Out = Arg.substr(N);
      return true;
    };
    std::string V;
    try {
      if (Eat("--seed=", V))
        Seed = std::stoull(V);
      else if (Eat("--iters=", V))
        Iters = std::stoll(V);
      else if (Eat("--corpus=", V))
        Corpus = V;
      else if (Eat("--runs=", V))
        DiffOpts.Iterations = std::stoll(V);
      else if (Eat("--input-seed=", V))
        DiffOpts.InputSeed = std::stoull(V);
      else if (Eat("--max-stages=", V))
        GenOpts.MaxStages = static_cast<int>(std::stol(V));
      else if (Eat("--mutations=", V))
        MutOpts.MaxMutations = static_cast<int>(std::stol(V));
      else if (Eat("--mode=", V)) {
        Mode = V;
        if (Mode != "diff" && Mode != "parallel" && Mode != "crash" &&
            Mode != "analyze" && Mode != "fault")
          return usage();
      } else if (Eat("--top=", V))
        Top = V;
      else if (Eat("--max-seconds=", V))
        MaxSeconds = std::stoll(V);
      else if (Arg == "--no-cc")
        DiffOpts.CheckC = false;
      else if (Arg == "--no-roundtrip")
        DiffOpts.CheckRoundTrip = false;
      else if (!Arg.empty() && Arg[0] == '-')
        return usage();
      else
        Replays.push_back(Arg);
    } catch (const std::exception &) {
      return usage();
    }
  }
  if (GenOpts.MaxStages < GenOpts.MinStages)
    GenOpts.MinStages = 1;
  if (MutOpts.MaxMutations < 1)
    return usage();
  if (Mode == "parallel")
    DiffOpts.CheckParallel = true;

  // --- Replay mode -------------------------------------------------------
  if (!Replays.empty()) {
    int Failures = 0;
    for (const std::string &Path : Replays) {
      bool Ok = false;
      std::string Source = readFileOrEmpty(Path, Ok);
      if (!Ok) {
        std::cerr << "error: cannot open '" << Path << "'\n";
        return 1;
      }
      std::string FileTop = headerTop(Source, Top);
      if (Mode == "crash") {
        lt::CrashCheckResult R = lt::checkCrashInvariant(Source, FileTop);
        if (R.Violation) {
          ++Failures;
          std::cout << "FAIL " << Path << "\n  " << R.Detail << "\n";
        } else {
          std::cout << "PASS " << Path << " ("
                    << (R.Accepted ? "accepted" : "rejected cleanly")
                    << ")\n";
        }
        continue;
      }
      if (Mode == "fault") {
        // Replays re-derive the injection from the "// seed:" header
        // (or --seed) so a saved reproducer trips the same site.
        uint64_t RSeed = Seed;
        size_t SP = Source.find("// seed: ");
        if (SP != std::string::npos)
          RSeed = std::stoull(Source.substr(SP + 9));
        lt::FaultOptions FO;
        FO.Iterations = DiffOpts.Iterations;
        FO.InputSeed = DiffOpts.InputSeed;
        FO.CheckC = DiffOpts.CheckC;
        lt::FaultCheckResult R =
            lt::checkFaultInvariant(Source, FileTop, RSeed, FO);
        if (R.Violation) {
          ++Failures;
          std::cout << "FAIL " << Path << "\n  " << R.Detail << "\n";
        } else {
          std::cout << "PASS " << Path << " ("
                    << (!R.Accepted    ? "rejected cleanly"
                        : R.Tripped    ? "fault contained"
                                       : "injection not reached")
                    << ")\n";
        }
        continue;
      }
      if (Mode == "analyze") {
        lt::AnalysisCheckResult R = lt::checkAnalysisOracle(Source, FileTop);
        if (R.Violation) {
          ++Failures;
          std::cout << "FAIL " << Path << "\n  " << R.Detail << "\n";
        } else {
          std::cout << "PASS " << Path << " ("
                    << (R.Accepted ? "accepted"
                        : R.ProvedClaims
                            ? (R.Confirmed ? "proved claim confirmed"
                                           : "rejected cleanly")
                            : "rejected cleanly")
                    << ")\n";
        }
        continue;
      }
      lt::DiffResult D = lt::diffProgram(Source, FileTop, DiffOpts);
      // A frontend reject during replay is almost always a wrong top
      // stream (fuzzer-written reproducers never have that status), so
      // surface it as a failure rather than a silent pass.
      if (D.failed() || D.Status == lt::DiffStatus::FrontendReject) {
        ++Failures;
        std::cout << "FAIL " << Path << "\n"
                  << reportBlock("  replay failure:", D);
        if (D.Status == lt::DiffStatus::FrontendReject)
          std::cout << "  hint: check the '// top: Name' header or pass "
                       "--top=Name\n";
      } else {
        std::cout << "PASS " << Path << " ("
                  << lt::diffStatusName(D.Status) << ")\n";
      }
    }
    std::cout << "replayed " << Replays.size() << " file(s), " << Failures
              << " failure(s)\n";
    return Failures == 0 ? 0 : 1;
  }

  // --- Fuzzing mode ------------------------------------------------------
  std::error_code EC;
  std::filesystem::create_directories(Corpus, EC);
  if (EC) {
    std::cerr << "error: cannot create corpus directory '" << Corpus
              << "': " << EC.message() << "\n";
    return 1;
  }

  auto Start = std::chrono::steady_clock::now();
  auto OutOfTime = [&] {
    if (MaxSeconds <= 0)
      return false;
    auto Elapsed = std::chrono::duration_cast<std::chrono::seconds>(
        std::chrono::steady_clock::now() - Start);
    return Elapsed.count() >= MaxSeconds;
  };

  // --- Fault mode --------------------------------------------------------
  if (Mode == "fault") {
    std::ostringstream Report;
    Report << "laminar-fuzz mode=fault seed=" << Seed << " iters=" << Iters
           << " runs=" << DiffOpts.Iterations
           << " input-seed=" << DiffOpts.InputSeed
           << " cc=" << (DiffOpts.CheckC ? "on" : "off") << "\n";

    const std::string Breadcrumb = Corpus + "/fault-current.str";
    int64_t Done = 0, Rejected = 0, Tripped = 0, NotReached = 0,
            Natural = 0, Failures = 0;
    for (int64_t I = 0; I < Iters && !OutOfTime(); ++I) {
      uint64_t PSeed = iterSeed(Seed, static_cast<uint64_t>(I));
      lt::ProgramSpec P = lt::generateProgram(PSeed, GenOpts);
      P.Top = Top;
      std::string Source = lt::renderSource(P);
      {
        // A hang would strand this process mid-iteration; the
        // breadcrumb then identifies the offending program + seed.
        std::ofstream BC(Breadcrumb);
        BC << "// laminar-fuzz fault-mode input (in flight)\n"
           << "// top: " << Top << "\n"
           << "// seed: " << PSeed << "\n"
           << "// base-seed: " << Seed << " iter: " << I << "\n"
           << Source;
      }
      lt::FaultOptions FO;
      FO.Iterations = DiffOpts.Iterations;
      FO.InputSeed = DiffOpts.InputSeed;
      // The C leg is ~100x the cost of an interpreted check; a
      // deterministic quarter of the seeds keeps it exercised without
      // dominating the sweep.
      FO.CheckC = DiffOpts.CheckC && lt::hostCompilerAvailable() &&
                  PSeed % 4 == 0;
      lt::FaultCheckResult R =
          lt::checkFaultInvariant(Source, Top, PSeed, FO);
      ++Done;
      if (!R.Accepted)
        ++Rejected;
      else if (R.Tripped)
        ++Tripped;
      else
        ++NotReached;
      if (R.NaturalFault)
        ++Natural;
      if (!R.Violation)
        continue;

      ++Failures;
      std::string Name =
          "fault-" + std::to_string(Seed) + "-" + std::to_string(I);
      lt::FaultOptions RO = FO;
      RO.CheckC = false; // Reduction re-runs the oracle many times.
      lt::SourceReduction Red = lt::reduceSourceText(
          Source,
          [&](const std::string &Cand) {
            return lt::checkFaultInvariant(Cand, Top, PSeed, RO)
                .Violation;
          });
      std::string ReproPath = Corpus + "/" + Name + ".str";
      std::ofstream Str(ReproPath);
      Str << "// laminar-fuzz fault-mode reproducer\n"
          << "// top: " << Top << "\n"
          << "// seed: " << PSeed << "\n"
          << "// base-seed: " << Seed << " iter: " << I << "\n"
          << "// injection: site=" << interp::faultSiteName(R.Point.S)
          << " worker=" << R.Point.Worker << " count=" << R.Point.Count
          << "\n"
          << Red.Source;
      std::ofstream Rep(Corpus + "/" + Name + ".report.txt");
      Rep << "violation:\n  " << R.Detail << "\nfault: " << R.FaultLine
          << "\ninjection: site=" << interp::faultSiteName(R.Point.S)
          << " worker=" << R.Point.Worker << " count=" << R.Point.Count
          << "\nreduction: " << Red.Steps << " step(s), " << Red.Evals
          << " eval(s)\n\noriginal source:\n"
          << Source;
      Report << "failure " << Name << ":\n  " << R.Detail
             << "\n  reproducer: " << ReproPath << "\n";
      std::cout << "FAIL " << Name << "\n  reproducer: " << ReproPath
                << "\n";
    }
    std::filesystem::remove(Breadcrumb, EC);

    Report << "programs=" << Done << " rejected=" << Rejected
           << " tripped=" << Tripped << " not-reached=" << NotReached
           << " natural-fault=" << Natural << " failures=" << Failures
           << "\n";
    std::ofstream Out(Corpus + "/report.txt");
    Out << Report.str();
    std::cout << Report.str();
    return Failures == 0 ? 0 : 1;
  }

  // --- Analyze mode ------------------------------------------------------
  if (Mode == "analyze") {
    std::ostringstream Report;
    Report << "laminar-fuzz mode=analyze seed=" << Seed << " iters=" << Iters
           << " mutations=" << MutOpts.MaxMutations << "\n";

    // Breadcrumb discipline matches crash mode: a sanitizer abort
    // inside the analyzer leaves its own reproducer behind.
    const std::string Breadcrumb = Corpus + "/analyze-current.str";
    int64_t Done = 0, Accepted = 0, Proved = 0, Confirmed = 0,
            Failures = 0;
    for (int64_t I = 0; I < Iters && !OutOfTime(); ++I) {
      uint64_t PSeed = iterSeed(Seed, static_cast<uint64_t>(I));
      lt::ProgramSpec P = lt::generateProgram(PSeed, GenOpts);
      P.Top = Top;
      // Each iteration checks the generated program and one mutated
      // variant: the former exercises the checks on well-formed
      // inputs, the latter their robustness on adversarial ones.
      const std::string Variants[] = {
          lt::renderSource(P),
          lt::mutateSource(lt::renderSource(P),
                           PSeed ^ 0x5A5A5A5A5A5A5A5AULL, MutOpts)};
      for (const std::string &Source : Variants) {
        {
          std::ofstream BC(Breadcrumb);
          BC << "// laminar-fuzz analyze-mode input (in flight)\n"
             << "// top: " << Top << "\n"
             << "// seed: " << Seed << " iter: " << I << "\n"
             << Source;
        }
        lt::AnalysisCheckResult R = lt::checkAnalysisOracle(Source, Top);
        ++Done;
        if (R.Accepted)
          ++Accepted;
        Proved += R.ProvedClaims;
        if (R.Confirmed)
          ++Confirmed;
        if (!R.Violation)
          continue;

        ++Failures;
        std::string Name =
            "analyze-" + std::to_string(Seed) + "-" + std::to_string(I);
        lt::SourceReduction Red = lt::reduceSourceText(
            Source,
            [&](const std::string &Cand) {
              return lt::checkAnalysisOracle(Cand, Top).Violation;
            });
        std::string ReproPath = Corpus + "/" + Name + ".str";
        std::ofstream Str(ReproPath);
        Str << "// laminar-fuzz analyze-mode reproducer\n"
            << "// top: " << Top << "\n"
            << "// seed: " << Seed << " iter: " << I << "\n"
            << Red.Source;
        std::ofstream Rep(Corpus + "/" + Name + ".report.txt");
        Rep << "violation:\n  " << R.Detail << "\nreduction: " << Red.Steps
            << " step(s), " << Red.Evals << " eval(s)\n\noriginal source:\n"
            << Source;
        Report << "failure " << Name << ":\n  " << R.Detail
               << "  reproducer: " << ReproPath << "\n";
        std::cout << "FAIL " << Name << "\n  reproducer: " << ReproPath
                  << "\n";
      }
    }
    std::filesystem::remove(Breadcrumb, EC);

    Report << "programs=" << Done << " accepted=" << Accepted
           << " proved-claims=" << Proved << " confirmed=" << Confirmed
           << " failures=" << Failures << "\n";
    std::ofstream Out(Corpus + "/report.txt");
    Out << Report.str();
    std::cout << Report.str();
    return Failures == 0 ? 0 : 1;
  }

  // --- Crash mode --------------------------------------------------------
  if (Mode == "crash") {
    std::ostringstream Report;
    Report << "laminar-fuzz mode=crash seed=" << Seed << " iters=" << Iters
           << " mutations=" << MutOpts.MaxMutations << "\n";

    const std::string Breadcrumb = Corpus + "/crash-current.str";
    // Cumulative per-phase wall clock, written only into the breadcrumb
    // (stdout and report.txt must stay byte-deterministic): a hard
    // crash then leaves behind both the reproducer and where the
    // campaign's time went.
    double GenMs = 0, MutateMs = 0, OracleMs = 0;
    auto MsSince = [](std::chrono::steady_clock::time_point T0) {
      return std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - T0)
          .count();
    };
    int64_t Done = 0, Accepted = 0, Failures = 0;
    for (int64_t I = 0; I < Iters && !OutOfTime(); ++I) {
      uint64_t PSeed = iterSeed(Seed, static_cast<uint64_t>(I));
      auto TGen = std::chrono::steady_clock::now();
      lt::ProgramSpec P = lt::generateProgram(PSeed, GenOpts);
      P.Top = Top;
      GenMs += MsSince(TGen);
      auto TMut = std::chrono::steady_clock::now();
      std::string Source =
          lt::mutateSource(lt::renderSource(P), PSeed ^ 0xA5A5A5A5A5A5A5A5ULL,
                           MutOpts);
      MutateMs += MsSince(TMut);
      {
        // A hard crash (sanitizer abort) kills this process before any
        // reporting runs; the breadcrumb then IS the reproducer.
        std::ofstream BC(Breadcrumb);
        BC << "// laminar-fuzz crash-mode input (in flight)\n"
           << "// top: " << Top << "\n"
           << "// seed: " << Seed << " iter: " << I << "\n"
           << "// phase-ms: gen=" << GenMs << " mutate=" << MutateMs
           << " oracle=" << OracleMs << "\n"
           << Source;
      }
      auto TOracle = std::chrono::steady_clock::now();
      lt::CrashCheckResult R = lt::checkCrashInvariant(Source, Top);
      OracleMs += MsSince(TOracle);
      ++Done;
      if (R.Accepted)
        ++Accepted;
      if (!R.Violation)
        continue;

      ++Failures;
      std::string Name =
          "crash-" + std::to_string(Seed) + "-" + std::to_string(I);
      lt::SourceReduction Red = lt::reduceSourceText(
          Source,
          [&](const std::string &Cand) {
            return lt::checkCrashInvariant(Cand, Top).Violation;
          });
      std::string ReproPath = Corpus + "/" + Name + ".str";
      std::ofstream Str(ReproPath);
      Str << "// laminar-fuzz crash-mode reproducer\n"
          << "// top: " << Top << "\n"
          << "// seed: " << Seed << " iter: " << I << "\n"
          << Red.Source;
      std::ofstream Rep(Corpus + "/" + Name + ".report.txt");
      Rep << "violation:\n  " << R.Detail << "\nreduction: " << Red.Steps
          << " step(s), " << Red.Evals << " eval(s)\n\noriginal source:\n"
          << Source;
      Report << "failure " << Name << ":\n  " << R.Detail
             << "  reproducer: " << ReproPath << "\n";
      std::cout << "FAIL " << Name << "\n  reproducer: " << ReproPath
                << "\n";
    }
    std::filesystem::remove(Breadcrumb, EC);

    Report << "programs=" << Done << " accepted=" << Accepted
           << " rejected=" << (Done - Accepted - Failures)
           << " failures=" << Failures << "\n";
    std::ofstream Out(Corpus + "/report.txt");
    Out << Report.str();
    std::cout << Report.str();
    return Failures == 0 ? 0 : 1;
  }

  // --- Diff mode ---------------------------------------------------------
  if (DiffOpts.CheckC && !lt::hostCompilerAvailable())
    DiffOpts.CheckC = false;

  std::ostringstream Report;
  Report << "laminar-fuzz seed=" << Seed << " iters=" << Iters
         << " runs=" << DiffOpts.Iterations
         << " input-seed=" << DiffOpts.InputSeed
         << " cc=" << (DiffOpts.CheckC ? "on" : "off")
         << " roundtrip=" << (DiffOpts.CheckRoundTrip ? "on" : "off")
         << " parallel=" << (DiffOpts.CheckParallel ? "on" : "off")
         << "\n";

  int64_t Done = 0;
  int64_t Rejects = 0;
  int64_t RunRejects = 0;
  int64_t Failures = 0;

  for (int64_t I = 0; I < Iters && !OutOfTime(); ++I) {
    uint64_t PSeed = iterSeed(Seed, static_cast<uint64_t>(I));
    lt::ProgramSpec P = lt::generateProgram(PSeed, GenOpts);
    P.Top = Top;
    std::string Source = lt::renderSource(P);
    lt::DiffResult D = lt::diffProgram(Source, P.Top, DiffOpts);
    ++Done;
    if (D.Status == lt::DiffStatus::FrontendReject) {
      ++Rejects;
      continue;
    }
    if (D.Status == lt::DiffStatus::RuntimeReject) {
      ++RunRejects;
      continue;
    }
    if (!D.failed())
      continue;

    ++Failures;
    std::string Name =
        "fail-" + std::to_string(Seed) + "-" + std::to_string(I);
    Report << reportBlock("failure " + Name + " (" + lt::describe(P) + ")",
                          D);

    lt::ReduceOptions RO;
    RO.Diff = DiffOpts;
    lt::ReduceResult Red = lt::reduceProgram(P, D, RO);
    Report << "  reduced: " << Red.Steps << " step(s), " << Red.Evals
           << " eval(s), " << lt::describe(Red.Minimal) << "\n";

    std::string ReproPath = Corpus + "/" + Name + ".str";
    std::ofstream Str(ReproPath);
    Str << "// laminar-fuzz reproducer\n"
        << "// top: " << Red.Minimal.Top << "\n"
        << "// seed: " << Seed << " iter: " << I << " gen-seed: " << PSeed
        << "\n"
        << "// status: " << lt::diffStatusName(Red.Failure.Status)
        << " config: " << Red.Failure.Config << "\n"
        << Red.Source;
    std::ofstream Rep(Corpus + "/" + Name + ".report.txt");
    Rep << reportBlock("original (" + lt::describe(P) + ")", D)
        << reportBlock("reduced (" + lt::describe(Red.Minimal) + ")",
                       Red.Failure)
        << "reduction: " << Red.Steps << " step(s), " << Red.Evals
        << " eval(s)\n\n"
        << "original source:\n"
        << Source;
    Report << "  reproducer: " << ReproPath << "\n";
    std::cout << "FAIL " << Name << "\n  reproducer: " << ReproPath << "\n";
  }

  Report << "programs=" << Done
         << " ok=" << (Done - Rejects - RunRejects - Failures)
         << " frontend-reject=" << Rejects
         << " runtime-reject=" << RunRejects << " failures=" << Failures
         << "\n";

  std::ofstream Out(Corpus + "/report.txt");
  Out << Report.str();
  std::cout << Report.str();
  return Failures == 0 ? 0 : 1;
}
