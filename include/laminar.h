/*===--- laminar.h - C embedding API for the laminar stream server ------===*
 *
 * The production front door, as a thin extern "C" surface over
 * src/server: compile stream programs into cached immutable plans,
 * spawn cheap instances, and stream columnar token batches through
 * them with zero copies in either direction.
 *
 * Object model
 *   laminar_server    owns the plan cache, the shared worker pool and
 *                     the instance table. One per process is typical.
 *   laminar_plan      an immutable compiled artifact (module, schedule,
 *                     partition plan, safety certificate). Reference-
 *                     counted; sharable across any number of instances.
 *                     The second laminar_compile of the same
 *                     (source, options) pair is a cache hit and runs
 *                     zero compiler phases.
 *   laminar_instance  one running stream: private memory image and
 *                     queues over a shared plan. Spawn cost is
 *                     O(state size), never O(compile).
 *   laminar_batch     one pulled output batch; exposes the server's
 *                     internal buffer directly (zero-copy out).
 *
 * Zero-copy contract: laminar_push_batch_* does NOT copy the input
 * buffer — the worker reads it in place. The buffer must stay valid
 * and unmodified until every output produced from it has been pulled
 * (or the instance is freed). Output buffers exposed by laminar_batch
 * are owned by the batch handle and freed by laminar_batch_free.
 *
 * Errors: functions returning pointers return NULL on failure;
 * functions returning int return a LAMINAR_* status. In both cases
 * laminar_last_error() describes the most recent failure on the
 * calling thread. Strings returned as char* are heap-allocated; free
 * them with laminar_string_free.
 *
 * Faults are contained per instance: a faulting instance reports a
 * structured laminar-fault-report-v1 document via
 * laminar_instance_fault and stops; sibling instances, the plan cache
 * and the server keep running.
 *
 *===--------------------------------------------------------------------===*/

#ifndef LAMINAR_H
#define LAMINAR_H

#include <stddef.h>
#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

typedef struct laminar_server laminar_server;
typedef struct laminar_plan laminar_plan;
typedef struct laminar_instance laminar_instance;
typedef struct laminar_batch laminar_batch;

/* Status codes (mirror server::BatchStatus; LAMINAR_ERR is API misuse
 * or an invalid handle). */
enum {
  LAMINAR_OK = 0,
  LAMINAR_BAD_BATCH = 1, /* token count/type violates the rate contract */
  LAMINAR_FAULTED = 2,   /* instance faulted; see laminar_instance_fault */
  LAMINAR_EMPTY = 3,     /* nothing completed, queued, or in flight */
  LAMINAR_CANCELLED = 4, /* cancelled explicitly or by the deadline */
  LAMINAR_BACKLOG = 5,   /* per-instance pending queue is full */
  LAMINAR_ERR = -1
};

/* Token element types. */
enum { LAMINAR_TYPE_FLOAT = 0, LAMINAR_TYPE_INT = 1 };

typedef struct laminar_server_config {
  unsigned workers;         /* worker threads; 0 = hardware concurrency */
  size_t cache_entries;     /* max cached plans; 0 disables the cache */
  size_t cache_bytes;       /* plan-cache byte budget; 0 = unlimited */
  size_t max_plan_bytes;    /* per-plan admission cap; 0 = unlimited */
  uint64_t deadline_ms;     /* per-batch execution deadline; 0 = none */
} laminar_server_config;

/* Fills *cfg with the defaults (hardware workers, 64-entry/256 MiB
 * cache, 64 MiB admission cap, no deadline). */
void laminar_server_config_init(laminar_server_config *cfg);

laminar_server *laminar_server_new(const laminar_server_config *cfg);
void laminar_server_free(laminar_server *srv);

/* Server-wide stats as JSON: merged compile-phase counters plus
 * server.cache.{hit,miss,evict,admission-reject,entries,bytes} and
 * server.instances.* / server.batches.* counters. */
char *laminar_server_stats(laminar_server *srv);

typedef struct laminar_compile_options {
  const char *top;       /* top-level stream to elaborate (required) */
  int fifo_mode;         /* nonzero compiles the FIFO baseline */
  unsigned opt_level;    /* 0..2 (default 2) */
  unsigned parallel;     /* partition for N workers; 0 = sequential */
  int allow_degrade;     /* nonzero: degrade to FIFO instead of failing */
} laminar_compile_options;

void laminar_compile_options_init(laminar_compile_options *opts);

/* Compile-or-fetch. *cache_hit (optional) is set to 1 when the plan
 * came out of the cache — in that case zero compiler phases ran.
 * Returns a new reference; release with laminar_plan_release. */
laminar_plan *laminar_compile(laminar_server *srv, const char *source,
                              const laminar_compile_options *opts,
                              int *cache_hit);
void laminar_plan_release(laminar_plan *plan);

/* Plan metadata as JSON: input/output element types, tokens per
 * iteration (in/out), init-phase tokens, partitions, approx bytes. */
char *laminar_plan_info(const laminar_plan *plan);

/* Rate contract accessors (what a batch of N iterations must carry:
 * in_per_iter * N tokens, plus in_for_init on the first batch). */
int laminar_plan_input_type(const laminar_plan *plan);
int laminar_plan_output_type(const laminar_plan *plan);
int64_t laminar_plan_input_per_iter(const laminar_plan *plan);
int64_t laminar_plan_input_for_init(const laminar_plan *plan);
int64_t laminar_plan_output_per_iter(const laminar_plan *plan);

laminar_instance *laminar_instance_new(laminar_server *srv,
                                       laminar_plan *plan);
/* Cancels, unregisters and releases the instance. Pending/unpulled
 * work is dropped. */
void laminar_instance_free(laminar_instance *inst);
uint64_t laminar_instance_id(const laminar_instance *inst);
void laminar_instance_cancel(laminar_instance *inst);

/* Queue one zero-copy batch of `iterations` steady iterations. The
 * element type must match the plan's input type. */
int laminar_push_batch_f64(laminar_instance *inst, const double *data,
                           size_t count, int64_t iterations);
int laminar_push_batch_i64(laminar_instance *inst, const int64_t *data,
                           size_t count, int64_t iterations);

/* Pop the oldest completed batch. Blocks while one is in flight;
 * LAMINAR_EMPTY when the instance is idle with nothing queued. */
int laminar_pull_batch(laminar_instance *inst, laminar_batch **out);
size_t laminar_batch_len(const laminar_batch *batch);
int laminar_batch_type(const laminar_batch *batch);
const double *laminar_batch_data_f64(const laminar_batch *batch);
const int64_t *laminar_batch_data_i64(const laminar_batch *batch);
void laminar_batch_free(laminar_batch *batch);

/* Per-instance telemetry (laminar-runtime-stats-v1 JSON). */
char *laminar_instance_stats(laminar_instance *inst);
/* Fault report (laminar-fault-report-v1 JSON); NULL if not faulted. */
char *laminar_instance_fault(laminar_instance *inst);

/* Thread-local description of the calling thread's last failure. The
 * pointer is valid until the next failing call on this thread. */
const char *laminar_last_error(void);
void laminar_string_free(char *str);

#ifdef __cplusplus
}
#endif

#endif /* LAMINAR_H */
